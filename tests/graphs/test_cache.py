"""Tests for the on-disk instance cache (v1 npz, v2 sharded, lifecycle)."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.graphs import (
    InstanceCacheError,
    MmapStorage,
    cached_instance,
    cycle_of_cliques,
    instance_cache_path,
    instance_digest,
    instance_shard_dir,
    list_cache,
    planted_partition,
    prune_cache,
)

PARAMS = dict(n=120, k=3, p_in=0.3, p_out=0.02, ensure_connected=True)


class TestDigest:
    def test_deterministic(self):
        a = instance_digest("planted_partition", PARAMS, 7)
        b = instance_digest("planted_partition", dict(PARAMS), 7)
        assert a == b

    def test_sensitive_to_params(self):
        base = instance_digest("planted_partition", PARAMS, 7)
        assert instance_digest("planted_partition", {**PARAMS, "n": 121}, 7) != base
        assert instance_digest("planted_partition", {**PARAMS, "p_out": 0.03}, 7) != base

    def test_sensitive_to_seed_and_generator(self):
        base = instance_digest("planted_partition", PARAMS, 7)
        assert instance_digest("planted_partition", PARAMS, 8) != base
        assert instance_digest("stochastic_block_model", PARAMS, 7) != base

    def test_numpy_scalars_canonicalised(self):
        assert instance_digest("g", {"n": np.int64(5), "p": np.float64(0.5)}, np.int32(1)) == \
            instance_digest("g", {"n": 5, "p": 0.5}, 1)

    def test_key_ordering_irrelevant(self):
        assert instance_digest("g", {"a": 1, "b": 2}, 0) == instance_digest("g", {"b": 2, "a": 1}, 0)

    def test_unserialisable_param_rejected(self):
        with pytest.raises(InstanceCacheError):
            instance_digest("g", {"rng": np.random.default_rng(0)}, 0)


class TestCachedInstance:
    def test_round_trip_equals_fresh_generation(self, tmp_path):
        fresh = planted_partition(seed=7, **PARAMS)
        stored = cached_instance(planted_partition, seed=7, cache_dir=tmp_path, **PARAMS)
        loaded = cached_instance(planted_partition, seed=7, cache_dir=tmp_path, **PARAMS)
        path = instance_cache_path(tmp_path, "planted_partition", PARAMS, 7)
        assert path.exists()
        for instance in (stored, loaded):
            assert instance.graph == fresh.graph
            assert instance.graph.name == fresh.graph.name
            assert np.array_equal(instance.partition.labels, fresh.partition.labels)

    def test_warm_load_does_not_regenerate(self, tmp_path, monkeypatch):
        cached_instance(planted_partition, seed=7, cache_dir=tmp_path, **PARAMS)

        def boom(**kwargs):  # pragma: no cover - must not run
            raise AssertionError("generator called despite warm cache")

        import repro.graphs.cache as cache_module

        monkeypatch.setattr(
            cache_module, "_resolve_generator", lambda g: (boom, "planted_partition")
        )
        loaded = cached_instance(planted_partition, seed=7, cache_dir=tmp_path, **PARAMS)
        assert loaded.graph.n == PARAMS["n"]

    def test_different_seeds_get_different_entries(self, tmp_path):
        a = cached_instance(planted_partition, seed=1, cache_dir=tmp_path, **PARAMS)
        b = cached_instance(planted_partition, seed=2, cache_dir=tmp_path, **PARAMS)
        assert len(list(tmp_path.glob("*.npz"))) == 2
        assert a.graph != b.graph

    def test_corrupted_file_falls_back_to_regeneration(self, tmp_path):
        cached_instance(planted_partition, seed=7, cache_dir=tmp_path, **PARAMS)
        path = instance_cache_path(tmp_path, "planted_partition", PARAMS, 7)
        path.write_bytes(b"definitely not an npz file")
        repaired = cached_instance(planted_partition, seed=7, cache_dir=tmp_path, **PARAMS)
        fresh = planted_partition(seed=7, **PARAMS)
        assert repaired.graph == fresh.graph
        # The broken entry was rewritten: the next load round-trips cleanly.
        again = cached_instance(planted_partition, seed=7, cache_dir=tmp_path, **PARAMS)
        assert again.graph == fresh.graph

    def test_key_mismatch_in_file_is_not_served(self, tmp_path):
        cached_instance(planted_partition, seed=1, cache_dir=tmp_path, **PARAMS)
        src = instance_cache_path(tmp_path, "planted_partition", PARAMS, 1)
        dst = instance_cache_path(tmp_path, "planted_partition", PARAMS, 2)
        dst.write_bytes(src.read_bytes())  # adversarially mislabel an entry
        served = cached_instance(planted_partition, seed=2, cache_dir=tmp_path, **PARAMS)
        fresh = planted_partition(seed=2, **PARAMS)
        assert served.graph == fresh.graph

    def test_refresh_regenerates(self, tmp_path):
        cached_instance(planted_partition, seed=7, cache_dir=tmp_path, **PARAMS)
        path = instance_cache_path(tmp_path, "planted_partition", PARAMS, 7)
        before = path.stat().st_mtime_ns
        cached_instance(planted_partition, seed=7, cache_dir=tmp_path, refresh=True, **PARAMS)
        assert path.stat().st_mtime_ns >= before
        fresh = planted_partition(seed=7, **PARAMS)
        assert cached_instance(
            planted_partition, seed=7, cache_dir=tmp_path, **PARAMS
        ).graph == fresh.graph

    def test_none_cache_dir_is_passthrough(self, tmp_path):
        instance = cached_instance(planted_partition, seed=7, cache_dir=None, **PARAMS)
        fresh = planted_partition(seed=7, **PARAMS)
        assert instance.graph == fresh.graph
        assert list(tmp_path.iterdir()) == []

    def test_generator_by_name(self, tmp_path):
        by_name = cached_instance(
            "cycle_of_cliques", k=3, clique_size=10, seed=4, cache_dir=tmp_path
        )
        direct = cycle_of_cliques(3, 10, seed=4)
        assert by_name.graph == direct.graph

    def test_unknown_generator_name(self, tmp_path):
        with pytest.raises(InstanceCacheError):
            cached_instance("no_such_generator", seed=0, cache_dir=tmp_path)

    def test_mmap_requires_cache_dir(self):
        with pytest.raises(InstanceCacheError):
            cached_instance(planted_partition, seed=7, cache_dir=None, mmap=True, **PARAMS)

    def test_self_loops_survive_round_trip(self, tmp_path):
        # Graphs with self-loops exercise the loop-counting path of from_csr.
        from repro.graphs import ClusteredGraph, Partition

        base = cycle_of_cliques(3, 10, seed=4)
        looped = base.graph.with_self_loops_to_degree(base.graph.max_degree + 1)

        def loopy_generator(*, seed=None):
            return ClusteredGraph(graph=looped, partition=base.partition, params={})

        fresh = loopy_generator(seed=0)
        cached_instance(loopy_generator, seed=0, cache_dir=tmp_path)
        loaded = cached_instance(loopy_generator, seed=0, cache_dir=tmp_path)
        assert loaded.graph == fresh.graph
        assert loaded.graph.num_self_loops == fresh.graph.num_self_loops > 0


class TestShardedEntries:
    def test_mmap_round_trip(self, tmp_path):
        fresh = planted_partition(seed=7, **PARAMS)
        stored = cached_instance(
            planted_partition, seed=7, cache_dir=tmp_path, mmap=True, **PARAMS
        )
        loaded = cached_instance(
            planted_partition, seed=7, cache_dir=tmp_path, mmap=True, **PARAMS
        )
        assert instance_shard_dir(tmp_path, "planted_partition", PARAMS, 7).is_dir()
        for instance in (stored, loaded):
            assert isinstance(instance.graph.storage, MmapStorage)
            assert instance.graph == fresh.graph
            assert instance.graph.num_edges == fresh.graph.num_edges
            assert np.array_equal(instance.partition.labels, fresh.partition.labels)

    def test_v1_entry_converts_without_regeneration(self, tmp_path, monkeypatch):
        cached_instance(planted_partition, seed=7, cache_dir=tmp_path, **PARAMS)
        fresh = planted_partition(seed=7, **PARAMS)

        def boom(**kwargs):  # pragma: no cover - must not run
            raise AssertionError("generator called despite v1 entry on disk")

        import repro.graphs.cache as cache_module

        monkeypatch.setattr(
            cache_module, "_resolve_generator", lambda g: (boom, "planted_partition")
        )
        converted = cached_instance(
            planted_partition, seed=7, cache_dir=tmp_path, mmap=True, **PARAMS
        )
        assert isinstance(converted.graph.storage, MmapStorage)
        assert converted.graph == fresh.graph

    def test_v2_entry_serves_dense_requests(self, tmp_path, monkeypatch):
        cached_instance(planted_partition, seed=7, cache_dir=tmp_path, mmap=True, **PARAMS)

        def boom(**kwargs):  # pragma: no cover - must not run
            raise AssertionError("generator called despite v2 entry on disk")

        import repro.graphs.cache as cache_module

        monkeypatch.setattr(
            cache_module, "_resolve_generator", lambda g: (boom, "planted_partition")
        )
        dense = cached_instance(planted_partition, seed=7, cache_dir=tmp_path, **PARAMS)
        assert dense.graph.storage.in_memory
        assert dense.graph == planted_partition(seed=7, **PARAMS).graph

    def test_shard_arcs_controls_sharding(self, tmp_path):
        instance = cached_instance(
            planted_partition, seed=7, cache_dir=tmp_path, mmap=True, shard_arcs=200,
            **PARAMS,
        )
        assert instance.graph.storage.num_shards > 1

    def test_corrupted_manifest_falls_back_to_regeneration(self, tmp_path):
        cached_instance(planted_partition, seed=7, cache_dir=tmp_path, mmap=True, **PARAMS)
        entry = instance_shard_dir(tmp_path, "planted_partition", PARAMS, 7)
        (entry / "manifest.json").write_text("not json")
        repaired = cached_instance(
            planted_partition, seed=7, cache_dir=tmp_path, mmap=True, **PARAMS
        )
        assert repaired.graph == planted_partition(seed=7, **PARAMS).graph

    def test_mislabelled_sharded_entry_is_not_served(self, tmp_path):
        import shutil

        cached_instance(planted_partition, seed=1, cache_dir=tmp_path, mmap=True, **PARAMS)
        src = instance_shard_dir(tmp_path, "planted_partition", PARAMS, 1)
        dst = instance_shard_dir(tmp_path, "planted_partition", PARAMS, 2)
        shutil.copytree(src, dst)  # adversarially mislabel an entry
        served = cached_instance(
            planted_partition, seed=2, cache_dir=tmp_path, mmap=True, **PARAMS
        )
        assert served.graph == planted_partition(seed=2, **PARAMS).graph

    def test_self_loops_survive_sharded_round_trip(self, tmp_path):
        from repro.graphs import ClusteredGraph

        base = cycle_of_cliques(3, 10, seed=4)
        looped = base.graph.with_self_loops_to_degree(base.graph.max_degree + 1)

        def loopy_generator(*, seed=None):
            return ClusteredGraph(graph=looped, partition=base.partition, params={})

        cached_instance(loopy_generator, seed=0, cache_dir=tmp_path, mmap=True)
        loaded = cached_instance(loopy_generator, seed=0, cache_dir=tmp_path, mmap=True)
        assert loaded.graph == looped
        assert loaded.graph.num_self_loops == looped.num_self_loops > 0


class TestCacheLifecycle:
    def _fill(self, tmp_path, seeds=(1, 2, 3)):
        for seed in seeds:
            cached_instance(planted_partition, seed=seed, cache_dir=tmp_path, **PARAMS)

    def test_list_cache_sees_both_formats(self, tmp_path):
        cached_instance(planted_partition, seed=1, cache_dir=tmp_path, **PARAMS)
        cached_instance(planted_partition, seed=2, cache_dir=tmp_path, mmap=True, **PARAMS)
        entries = list_cache(tmp_path)
        assert sorted(e.kind for e in entries) == ["npz", "sharded"]
        assert all(e.generator == "planted_partition" for e in entries)
        assert all(e.nbytes > 0 for e in entries)

    def test_list_cache_ignores_unrelated_files(self, tmp_path):
        (tmp_path / "notes.txt").write_text("keep me")
        (tmp_path / "nodigest.npz").write_bytes(b"x")
        self._fill(tmp_path, seeds=(1,))
        assert len(list_cache(tmp_path)) == 1

    def test_prune_to_zero_removes_everything(self, tmp_path):
        self._fill(tmp_path)
        evicted = prune_cache(tmp_path, 0)
        assert len(evicted) == 3
        assert list_cache(tmp_path) == []
        assert (tmp_path).is_dir()

    def test_prune_is_lru_by_atime(self, tmp_path):
        self._fill(tmp_path)
        entries = {e.digest: e for e in list_cache(tmp_path)}
        paths = sorted(tmp_path.glob("*.npz"))
        # Force a deterministic LRU order regardless of filesystem atime
        # granularity: oldest first in glob order.
        for i, path in enumerate(paths):
            os.utime(path, (1_000_000 + i, 1_000_000 + i))
        total = sum(e.nbytes for e in entries.values())
        one_entry = max(e.nbytes for e in entries.values())
        evicted = prune_cache(tmp_path, total - 1)
        assert len(evicted) == 1
        assert evicted[0].path == paths[0]
        survivors = {e.path for e in list_cache(tmp_path)}
        assert set(paths[1:]) == survivors

    def test_prune_dry_run_deletes_nothing(self, tmp_path):
        self._fill(tmp_path)
        would = prune_cache(tmp_path, 0, dry_run=True)
        assert len(would) == 3
        assert len(list_cache(tmp_path)) == 3

    def test_prune_protects_named_entries(self, tmp_path):
        self._fill(tmp_path)
        keep = instance_cache_path(tmp_path, "planted_partition", PARAMS, 2)
        evicted = prune_cache(tmp_path, 0, protect=[keep])
        assert keep not in {e.path for e in evicted}
        assert {e.path for e in list_cache(tmp_path)} == {keep}

    def test_max_bytes_bounds_the_store_but_keeps_fresh_entry(self, tmp_path):
        # A budget below a single entry still keeps the instance just made.
        self._fill(tmp_path, seeds=(1, 2))
        cached_instance(
            planted_partition, seed=3, cache_dir=tmp_path, max_bytes=1, **PARAMS
        )
        entries = list_cache(tmp_path)
        assert len(entries) == 1
        assert entries[0].path == instance_cache_path(
            tmp_path, "planted_partition", PARAMS, 3
        )

    def test_prune_rejects_negative_budget(self, tmp_path):
        with pytest.raises(InstanceCacheError):
            prune_cache(tmp_path, -1)


class TestLabelStoreAccounting:
    """Label stores ride the cache lifecycle: listing, pruning, removal."""

    def _entry_with_labels(self, tmp_path, seed=7):
        from repro.service.labels import write_labels

        cached_instance(planted_partition, seed=seed, cache_dir=tmp_path, **PARAMS)
        digest = instance_digest("planted_partition", PARAMS, seed)
        write_labels(
            tmp_path, "planted_partition", digest, "ours", 873,
            np.zeros(PARAMS["n"], dtype=np.int64),
        )
        return digest

    def test_labels_attach_to_their_cache_entry(self, tmp_path):
        digest = self._entry_with_labels(tmp_path)
        (entry,) = list_cache(tmp_path)
        assert entry.kind == "npz" and entry.digest == digest
        assert entry.labels_path is not None and entry.labels_path.suffix == ".labels"
        assert entry.labels_nbytes > 0
        assert entry.total_nbytes == entry.nbytes + entry.labels_nbytes

    def test_orphan_label_store_is_listed(self, tmp_path):
        from repro.service.labels import write_labels

        write_labels(tmp_path, "planted_partition", "feedbeef", "ours", 1, [0, 1])
        (entry,) = list_cache(tmp_path)
        assert entry.kind == "labels"
        assert entry.digest == "feedbeef" and entry.nbytes > 0
        assert entry.labels_path is None

    def test_prune_counts_label_bytes_toward_budget(self, tmp_path):
        digest = self._entry_with_labels(tmp_path)
        (entry,) = list_cache(tmp_path)
        # A budget that fits the instance alone but not instance + labels
        # must evict: label bytes count.
        evicted = prune_cache(tmp_path, entry.nbytes)
        assert [e.digest for e in evicted] == [digest]
        assert list_cache(tmp_path) == []
        assert not any(p.suffix == ".labels" for p in tmp_path.iterdir())

    def test_removing_an_entry_removes_its_label_store(self, tmp_path):
        self._entry_with_labels(tmp_path)
        (entry,) = list_cache(tmp_path)
        entry.remove()
        assert list(tmp_path.iterdir()) == []

    def test_prune_reclaims_orphan_stores(self, tmp_path):
        from repro.service.labels import write_labels

        write_labels(tmp_path, "planted_partition", "feedbeef", "ours", 1, [0, 1])
        evicted = prune_cache(tmp_path, 0)
        assert [e.kind for e in evicted] == ["labels"]
        assert list(tmp_path.iterdir()) == []


class TestStreamedGeneration:
    """generate_to_cache: the out-of-core write path of the v2 format."""

    LFR = dict(n=200, mu=0.2, average_degree=8)

    @staticmethod
    def _entry_bytes(directory):
        return {p.name: p.read_bytes() for p in sorted(directory.iterdir())}

    @pytest.mark.parametrize(
        "name, params, seed",
        [
            ("lfr_benchmark", dict(n=200, mu=0.2, average_degree=8), 3),
            ("planted_partition", dict(n=150, k=3, p_in=0.3, p_out=0.02), 9),
        ],
    )
    def test_byte_identical_to_materialising_path(self, tmp_path, name, params, seed):
        from repro.graphs import generate_to_cache

        a, b = tmp_path / "mat", tmp_path / "str"
        cached_instance(name, seed=seed, cache_dir=a, mmap=True, streaming=False, **params)
        generate_to_cache(name, seed=seed, cache_dir=b, **params)
        mat = self._entry_bytes(instance_shard_dir(a, name, params, seed))
        got = self._entry_bytes(instance_shard_dir(b, name, params, seed))
        assert mat == got
        # nothing but the entry remains (spill + tmp dirs cleaned up)
        assert [p.name for p in b.iterdir()] == [instance_shard_dir(b, name, params, seed).name]

    def test_tiny_windows_same_graph(self, tmp_path):
        # Multi-window pass B (window smaller than the arc count) must land
        # on the same instance as the single-window build.
        from repro.graphs import generate_to_cache

        a, b = tmp_path / "one", tmp_path / "many"
        i1 = generate_to_cache("lfr_benchmark", seed=3, cache_dir=a, **self.LFR)
        i2 = generate_to_cache(
            "lfr_benchmark", seed=3, cache_dir=b, window_arcs=97, shard_arcs=131, **self.LFR
        )
        assert i1.graph == i2.graph
        assert np.array_equal(i1.partition.labels, i2.partition.labels)

    @pytest.mark.parametrize("window_arcs", [1, 10**9])
    def test_bucketed_spill_window_edge_cases(self, tmp_path, window_arcs):
        # The two degenerate window partitions of the bucketed spill: one row
        # per window (window_arcs=1 -- every non-empty row overflows its own
        # window) and a single window covering the whole graph.  Both must
        # produce entries byte-identical to the materialising path.
        from repro.graphs import generate_to_cache

        name, params, seed = "lfr_benchmark", self.LFR, 3
        a, b = tmp_path / "mat", tmp_path / "str"
        cached_instance(name, seed=seed, cache_dir=a, mmap=True, streaming=False, **params)
        generate_to_cache(name, seed=seed, cache_dir=b, window_arcs=window_arcs, **params)
        mat = self._entry_bytes(instance_shard_dir(a, name, params, seed))
        got = self._entry_bytes(instance_shard_dir(b, name, params, seed))
        assert mat == got

    def test_bucketed_spill_reads_each_byte_once(self, tmp_path):
        # The one-pass build: the flat spill is read exactly once (by the
        # bucketing sweep) and every bucket byte is read exactly once (by
        # pass B), so total scratch reads equal total scratch writes.
        from repro.graphs import generate_to_cache, track_spill_io

        with track_spill_io() as stats:
            generate_to_cache(
                "lfr_benchmark", seed=3, cache_dir=tmp_path, window_arcs=97, **self.LFR
            )
        assert stats.spill_bytes_written > 0
        assert stats.spill_bytes_read == stats.spill_bytes_written
        assert stats.bucket_bytes_read == stats.bucket_bytes_written
        assert stats.read_amplification == 1.0

    def test_cached_instance_auto_streams(self, tmp_path, monkeypatch):
        # With a *_chunks variant available, a cold mmap=True generation must
        # go through the streamed builder, never the materialising one.
        from repro.graphs import cache as cache_module

        def _boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("materialising path must not run")

        monkeypatch.setattr(cache_module, "_store_sharded", _boom)
        instance = cached_instance(
            "lfr_benchmark", seed=4, cache_dir=tmp_path, mmap=True, **self.LFR
        )
        assert not instance.graph.storage.in_memory

    def test_streaming_false_forces_materialising(self, tmp_path, monkeypatch):
        from repro.graphs import cache as cache_module

        def _boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("streamed path must not run")

        monkeypatch.setattr(cache_module, "generate_to_cache", _boom)
        instance = cached_instance(
            "lfr_benchmark", seed=4, cache_dir=tmp_path, mmap=True, streaming=False, **self.LFR
        )
        assert not instance.graph.storage.in_memory

    def test_streaming_requires_mmap(self, tmp_path):
        with pytest.raises(InstanceCacheError, match="streaming=True requires mmap"):
            cached_instance(
                "lfr_benchmark", seed=1, cache_dir=tmp_path, streaming=True, **self.LFR
            )

    def test_streaming_requires_chunk_variant(self, tmp_path):
        with pytest.raises(InstanceCacheError, match="chunk-stream variant"):
            cached_instance(
                "random_regular_graph",
                seed=1,
                cache_dir=tmp_path,
                mmap=True,
                streaming=True,
                n=20,
                d=3,
            )

    def test_generator_without_chunks_falls_back(self, tmp_path):
        instance = cached_instance(
            "random_regular_graph", seed=1, cache_dir=tmp_path, mmap=True, n=20, d=3
        )
        assert not instance.graph.storage.in_memory

    def test_existing_entry_served_without_regenerating(self, tmp_path, monkeypatch):
        from repro.graphs import generate_to_cache
        from repro.graphs import lfr as lfr_module

        first = generate_to_cache("lfr_benchmark", seed=6, cache_dir=tmp_path, **self.LFR)

        def _boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("entry exists; generator must not run")

        monkeypatch.setattr(lfr_module, "lfr_benchmark_chunks", _boom)
        again = generate_to_cache("lfr_benchmark", seed=6, cache_dir=tmp_path, **self.LFR)
        assert again.graph == first.graph

    def test_duplicate_keys_rejected_and_cleaned_up(self, tmp_path):
        from repro.graphs import EdgeChunkStream, GraphError, generate_to_cache

        def dup_chunks(*, n, seed=None):
            def attempts():
                yield EdgeChunkStream(
                    n=n,
                    name="dup",
                    labels=np.zeros(n, dtype=np.int64),
                    params={"generator": "dup", "n": n},
                    chunks=iter([np.array([1 * n + 2, 1 * n + 2])]),
                )

            return attempts()

        dup_chunks.__name__ = "dup_chunks"
        with pytest.raises(GraphError, match="duplicate undirected edges"):
            generate_to_cache(dup_chunks, seed=0, cache_dir=tmp_path, n=5)
        assert [p for p in tmp_path.iterdir()] == []

    def test_connectivity_rejection_retries(self, tmp_path):
        from repro.graphs import EdgeChunkStream, generate_to_cache

        def flaky_chunks(*, n, seed=None):
            labels = np.zeros(n, dtype=np.int64)

            def attempts():
                # attempt 1: two components -> rejected
                yield EdgeChunkStream(
                    n=n,
                    name="flaky",
                    labels=labels,
                    params={"generator": "flaky", "n": n},
                    chunks=iter([np.array([0 * n + 1, 2 * n + 3])]),
                    ensure_connected=True,
                )
                # attempt 2: a path over all nodes -> accepted
                keys = np.array([i * n + i + 1 for i in range(n - 1)])
                yield EdgeChunkStream(
                    n=n,
                    name="flaky",
                    labels=labels,
                    params={"generator": "flaky", "n": n},
                    chunks=iter([keys]),
                    ensure_connected=True,
                )

            return attempts()

        flaky_chunks.__name__ = "flaky_chunks"
        instance = generate_to_cache(flaky_chunks, seed=0, cache_dir=tmp_path, n=4)
        assert instance.graph.is_connected()
        assert instance.graph.num_edges == 3
        # only the accepted entry remains on disk
        assert [p.suffix for p in tmp_path.iterdir()] == [".csr"]

    def test_invalid_window_arcs(self, tmp_path):
        from repro.graphs import generate_to_cache

        with pytest.raises(InstanceCacheError, match="window_arcs"):
            generate_to_cache(
                "lfr_benchmark", seed=1, cache_dir=tmp_path, window_arcs=0, **self.LFR
            )

    def test_key_protocol_violation_rejected(self, tmp_path):
        from repro.graphs import EdgeChunkStream, GraphError, generate_to_cache

        def bad_chunks(*, n, seed=None):
            def attempts():
                yield EdgeChunkStream(
                    n=n,
                    name="bad",
                    labels=np.zeros(n, dtype=np.int64),
                    params={},
                    chunks=iter([np.array([n * n])]),
                )

            return attempts()

        bad_chunks.__name__ = "bad_chunks"
        with pytest.raises(GraphError, match="fused-key protocol"):
            generate_to_cache(bad_chunks, seed=0, cache_dir=tmp_path, n=3)
