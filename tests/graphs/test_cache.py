"""Tests for the on-disk npz instance cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    InstanceCacheError,
    cached_instance,
    cycle_of_cliques,
    instance_cache_path,
    instance_digest,
    planted_partition,
)

PARAMS = dict(n=120, k=3, p_in=0.3, p_out=0.02, ensure_connected=True)


class TestDigest:
    def test_deterministic(self):
        a = instance_digest("planted_partition", PARAMS, 7)
        b = instance_digest("planted_partition", dict(PARAMS), 7)
        assert a == b

    def test_sensitive_to_params(self):
        base = instance_digest("planted_partition", PARAMS, 7)
        assert instance_digest("planted_partition", {**PARAMS, "n": 121}, 7) != base
        assert instance_digest("planted_partition", {**PARAMS, "p_out": 0.03}, 7) != base

    def test_sensitive_to_seed_and_generator(self):
        base = instance_digest("planted_partition", PARAMS, 7)
        assert instance_digest("planted_partition", PARAMS, 8) != base
        assert instance_digest("stochastic_block_model", PARAMS, 7) != base

    def test_numpy_scalars_canonicalised(self):
        assert instance_digest("g", {"n": np.int64(5), "p": np.float64(0.5)}, np.int32(1)) == \
            instance_digest("g", {"n": 5, "p": 0.5}, 1)

    def test_key_ordering_irrelevant(self):
        assert instance_digest("g", {"a": 1, "b": 2}, 0) == instance_digest("g", {"b": 2, "a": 1}, 0)

    def test_unserialisable_param_rejected(self):
        with pytest.raises(InstanceCacheError):
            instance_digest("g", {"rng": np.random.default_rng(0)}, 0)


class TestCachedInstance:
    def test_round_trip_equals_fresh_generation(self, tmp_path):
        fresh = planted_partition(seed=7, **PARAMS)
        stored = cached_instance(planted_partition, seed=7, cache_dir=tmp_path, **PARAMS)
        loaded = cached_instance(planted_partition, seed=7, cache_dir=tmp_path, **PARAMS)
        path = instance_cache_path(tmp_path, "planted_partition", PARAMS, 7)
        assert path.exists()
        for instance in (stored, loaded):
            assert instance.graph == fresh.graph
            assert instance.graph.name == fresh.graph.name
            assert np.array_equal(instance.partition.labels, fresh.partition.labels)

    def test_warm_load_does_not_regenerate(self, tmp_path, monkeypatch):
        cached_instance(planted_partition, seed=7, cache_dir=tmp_path, **PARAMS)

        def boom(**kwargs):  # pragma: no cover - must not run
            raise AssertionError("generator called despite warm cache")

        import repro.graphs.cache as cache_module

        monkeypatch.setattr(
            cache_module, "_resolve_generator", lambda g: (boom, "planted_partition")
        )
        loaded = cached_instance(planted_partition, seed=7, cache_dir=tmp_path, **PARAMS)
        assert loaded.graph.n == PARAMS["n"]

    def test_different_seeds_get_different_entries(self, tmp_path):
        a = cached_instance(planted_partition, seed=1, cache_dir=tmp_path, **PARAMS)
        b = cached_instance(planted_partition, seed=2, cache_dir=tmp_path, **PARAMS)
        assert len(list(tmp_path.glob("*.npz"))) == 2
        assert a.graph != b.graph

    def test_corrupted_file_falls_back_to_regeneration(self, tmp_path):
        cached_instance(planted_partition, seed=7, cache_dir=tmp_path, **PARAMS)
        path = instance_cache_path(tmp_path, "planted_partition", PARAMS, 7)
        path.write_bytes(b"definitely not an npz file")
        repaired = cached_instance(planted_partition, seed=7, cache_dir=tmp_path, **PARAMS)
        fresh = planted_partition(seed=7, **PARAMS)
        assert repaired.graph == fresh.graph
        # The broken entry was rewritten: the next load round-trips cleanly.
        again = cached_instance(planted_partition, seed=7, cache_dir=tmp_path, **PARAMS)
        assert again.graph == fresh.graph

    def test_key_mismatch_in_file_is_not_served(self, tmp_path):
        cached_instance(planted_partition, seed=1, cache_dir=tmp_path, **PARAMS)
        src = instance_cache_path(tmp_path, "planted_partition", PARAMS, 1)
        dst = instance_cache_path(tmp_path, "planted_partition", PARAMS, 2)
        dst.write_bytes(src.read_bytes())  # adversarially mislabel an entry
        served = cached_instance(planted_partition, seed=2, cache_dir=tmp_path, **PARAMS)
        fresh = planted_partition(seed=2, **PARAMS)
        assert served.graph == fresh.graph

    def test_refresh_regenerates(self, tmp_path):
        cached_instance(planted_partition, seed=7, cache_dir=tmp_path, **PARAMS)
        path = instance_cache_path(tmp_path, "planted_partition", PARAMS, 7)
        before = path.stat().st_mtime_ns
        cached_instance(planted_partition, seed=7, cache_dir=tmp_path, refresh=True, **PARAMS)
        assert path.stat().st_mtime_ns >= before
        fresh = planted_partition(seed=7, **PARAMS)
        assert cached_instance(
            planted_partition, seed=7, cache_dir=tmp_path, **PARAMS
        ).graph == fresh.graph

    def test_none_cache_dir_is_passthrough(self, tmp_path):
        instance = cached_instance(planted_partition, seed=7, cache_dir=None, **PARAMS)
        fresh = planted_partition(seed=7, **PARAMS)
        assert instance.graph == fresh.graph
        assert list(tmp_path.iterdir()) == []

    def test_generator_by_name(self, tmp_path):
        by_name = cached_instance(
            "cycle_of_cliques", k=3, clique_size=10, seed=4, cache_dir=tmp_path
        )
        direct = cycle_of_cliques(3, 10, seed=4)
        assert by_name.graph == direct.graph

    def test_unknown_generator_name(self, tmp_path):
        with pytest.raises(InstanceCacheError):
            cached_instance("no_such_generator", seed=0, cache_dir=tmp_path)

    def test_self_loops_survive_round_trip(self, tmp_path):
        # Graphs with self-loops exercise the loop-counting path of from_csr.
        from repro.graphs import ClusteredGraph, Partition

        base = cycle_of_cliques(3, 10, seed=4)
        looped = base.graph.with_self_loops_to_degree(base.graph.max_degree + 1)

        def loopy_generator(*, seed=None):
            return ClusteredGraph(graph=looped, partition=base.partition, params={})

        fresh = loopy_generator(seed=0)
        cached_instance(loopy_generator, seed=0, cache_dir=tmp_path)
        loaded = cached_instance(loopy_generator, seed=0, cache_dir=tmp_path)
        assert loaded.graph == fresh.graph
        assert loaded.graph.num_self_loops == fresh.graph.num_self_loops > 0
