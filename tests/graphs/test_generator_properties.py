"""Property suite for the array-native generators.

Every family is checked for the invariants the evaluation relies on:

* planted-partition consistency — the returned :class:`Partition` matches
  the block layout the generator promises;
* degree / connectivity invariants — regularity, bounded degree ratios,
  bridge-induced connectivity;
* seed determinism — the new array samplers must stay reproducible, both
  from an integer seed and from an equivalent ``Generator``;
* distributional parity — at small n the sparse-regime SBM sampler must
  match the seed implementation's per-pair Bernoulli distribution (same
  expected edge counts per block; the Binomial-count construction is
  distributionally identical, which this verifies empirically).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    almost_regular_clustered_graph,
    connected_caveman,
    cycle_of_cliques,
    lfr_benchmark,
    noisy_clustered_graph,
    path_of_cliques,
    planted_partition,
    random_regular_graph,
    ring_of_expanders,
    stochastic_block_model,
)

FAMILIES = {
    "sbm": lambda seed: stochastic_block_model([20, 14, 10], 0.5, 0.05, seed=seed),
    "planted": lambda seed: planted_partition(48, 3, 0.5, 0.05, seed=seed),
    "cycle_of_cliques": lambda seed: cycle_of_cliques(4, 8, seed=seed),
    "path_of_cliques": lambda seed: path_of_cliques(3, 7, seed=seed),
    "caveman": lambda seed: connected_caveman(4, 6),
    "ring_of_expanders": lambda seed: ring_of_expanders(3, 16, 4, seed=seed),
    "random_regular": lambda seed: random_regular_graph(30, 4, seed=seed),
    "almost_regular": lambda seed: almost_regular_clustered_graph(2, 16, 4, 6, seed=seed),
    "noisy": lambda seed: noisy_clustered_graph(cycle_of_cliques(3, 8, seed=0), 10, seed=seed),
    "lfr": lambda seed: lfr_benchmark(120, mu=0.2, average_degree=8, seed=seed),
}


class TestPlantedPartitionConsistency:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_partition_covers_all_nodes(self, family):
        inst = FAMILIES[family](seed=1)
        assert inst.partition.labels.shape == (inst.graph.n,)
        assert int(inst.partition.sizes.sum()) == inst.graph.n

    def test_sbm_blocks_are_contiguous(self):
        inst = stochastic_block_model([20, 14, 10], 0.5, 0.05, seed=2)
        labels = inst.partition.labels
        assert list(inst.partition.sizes) == [20, 14, 10]
        # Block layout: nodes 0..19 -> cluster 0, 20..33 -> 1, 34..43 -> 2.
        assert np.array_equal(labels, np.repeat([0, 1, 2], [20, 14, 10]))

    def test_block_families_label_blocks(self):
        for inst, size in (
            (cycle_of_cliques(4, 8, seed=0), 8),
            (ring_of_expanders(3, 16, 4, seed=0), 16),
            (connected_caveman(4, 6), 6),
        ):
            assert np.array_equal(
                inst.partition.labels, np.repeat(np.arange(inst.k), size)
            )

    def test_noise_preserves_partition(self):
        base = cycle_of_cliques(3, 8, seed=0)
        noisy = noisy_clustered_graph(base, 12, seed=3)
        assert noisy.partition == base.partition
        assert noisy.graph.num_edges == base.graph.num_edges + 12


class TestDegreeAndConnectivityInvariants:
    def test_random_regular_is_regular(self):
        for seed in range(5):
            g = random_regular_graph(26, 5, seed=seed).graph
            assert g.is_regular() and g.degree(0) == 5
            assert g.num_self_loops == 0
            assert g.num_edges == 26 * 5 // 2

    def test_caveman_is_regular_and_connected(self):
        g = connected_caveman(5, 7).graph
        assert g.is_regular() and g.degree(0) == 6
        assert g.is_connected()

    def test_ring_of_expanders_degree_window(self):
        g = ring_of_expanders(4, 20, 6, seed=3).graph
        assert g.min_degree >= 6
        # bridge endpoints gain at most 2 (both joins of a cluster).
        assert g.max_degree <= 8
        assert g.is_connected()

    def test_almost_regular_degree_window(self):
        inst = almost_regular_clustered_graph(3, 20, 4, 7, seed=4)
        assert inst.graph.min_degree >= 4
        assert inst.graph.degree_ratio() <= (7 + 2) / 4 + 0.5

    def test_clique_families_connected(self):
        assert cycle_of_cliques(5, 6, seed=0).graph.is_connected()
        assert path_of_cliques(5, 6, seed=0).graph.is_connected()

    def test_sbm_ensure_connected(self):
        inst = planted_partition(60, 3, 0.5, 0.05, seed=5, ensure_connected=True)
        assert inst.graph.is_connected()


class TestSeedDeterminism:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_same_seed_same_graph(self, family):
        a = FAMILIES[family](seed=11)
        b = FAMILIES[family](seed=11)
        assert a.graph == b.graph
        assert a.partition == b.partition

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_generator_object_equivalent_to_int_seed(self, family):
        a = FAMILIES[family](seed=13)
        b = FAMILIES[family](seed=np.random.default_rng(13))
        assert a.graph == b.graph

    @pytest.mark.parametrize(
        "family", sorted(set(FAMILIES) - {"caveman"})  # caveman is deterministic
    )
    def test_different_seeds_differ(self, family):
        a = FAMILIES[family](seed=1)
        b = FAMILIES[family](seed=2)
        assert a.graph != b.graph


class TestSBMDistributionalParity:
    """The sparse-regime sampler must match the seed's Bernoulli-mask scheme.

    A G(N, p) edge set is a uniform M-subset conditioned on its
    Binomial(N, p) size, which is exactly how the new sampler draws blocks —
    so expected per-block edge counts (and their variance) must agree with
    the dense per-pair construction the seed used.  Verified empirically
    against the analytic values at small n.
    """

    TRIALS = 200

    def test_within_and_across_block_edge_counts(self):
        sizes = [30, 20]
        p_in, p_out = 0.3, 0.08
        n_pairs_in_0 = 30 * 29 // 2
        n_pairs_in_1 = 20 * 19 // 2
        n_pairs_across = 30 * 20

        within0, within1, across = [], [], []
        for seed in range(self.TRIALS):
            inst = stochastic_block_model(sizes, p_in, p_out, seed=seed)
            edges = inst.graph.edge_array()
            in_first = edges < 30
            w0 = int(np.sum(in_first[:, 0] & in_first[:, 1]))
            w1 = int(np.sum(~in_first[:, 0] & ~in_first[:, 1]))
            within0.append(w0)
            within1.append(w1)
            across.append(edges.shape[0] - w0 - w1)

        # Means: within 4 sigma of the Binomial expectation.
        for counts, n_pairs, p in (
            (within0, n_pairs_in_0, p_in),
            (within1, n_pairs_in_1, p_in),
            (across, n_pairs_across, p_out),
        ):
            mean = np.mean(counts)
            expected = n_pairs * p
            tolerance = 4.0 * np.sqrt(n_pairs * p * (1 - p) / self.TRIALS)
            assert abs(mean - expected) < tolerance, (mean, expected, tolerance)

        # Variance sanity: Binomial, not degenerate (a buggy sampler that
        # always emitted round(N·p) edges would fail here).
        var = np.var(within0, ddof=1)
        expected_var = n_pairs_in_0 * p_in * (1 - p_in)
        assert 0.5 * expected_var < var < 2.0 * expected_var

    def test_per_cluster_p_in_vector(self):
        counts_dense = []
        counts_sparse = []
        for seed in range(60):
            inst = stochastic_block_model([16, 16], [0.7, 0.2], 0.0, seed=seed)
            edges = inst.graph.edge_array()
            first = edges < 16
            counts_dense.append(int(np.sum(first[:, 0] & first[:, 1])))
            counts_sparse.append(edges.shape[0] - counts_dense[-1])
        pairs = 16 * 15 // 2
        assert abs(np.mean(counts_dense) - pairs * 0.7) < 4 * np.sqrt(pairs * 0.7 * 0.3 / 60)
        assert abs(np.mean(counts_sparse) - pairs * 0.2) < 4 * np.sqrt(pairs * 0.2 * 0.8 / 60)

    def test_extreme_probabilities(self):
        full = stochastic_block_model([10, 10], 1.0, 0.0, seed=0)
        assert full.graph.num_edges == 2 * (10 * 9 // 2)
        empty = stochastic_block_model([10, 10], 0.0, 0.0, seed=0)
        assert empty.graph.num_edges == 0
