"""Unit tests for instance validation."""

from __future__ import annotations

import numpy as np

from repro.graphs import (
    ClusteredGraph,
    Graph,
    Partition,
    cycle_of_cliques,
    planted_partition,
    validate_instance,
)


class TestValidateInstance:
    def test_good_instance_passes(self, four_clique_instance):
        report = validate_instance(four_clique_instance)
        assert report.ok
        assert report.structure["upsilon"] > 1.0

    def test_disconnected_instance_fails(self):
        graph = Graph(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        instance = ClusteredGraph(
            graph=graph, partition=Partition.from_labels([0, 0, 0, 1, 1, 1])
        )
        report = validate_instance(instance, check_spectral=False)
        assert not report.ok
        assert any("connected" in e for e in report.errors)

    def test_isolated_node_fails(self):
        graph = Graph(3, [(0, 1)])
        instance = ClusteredGraph(graph=graph, partition=Partition.from_labels([0, 0, 1]))
        report = validate_instance(instance, check_spectral=False)
        assert not report.ok

    def test_size_mismatch_fails(self):
        graph = Graph(3, [(0, 1), (1, 2)])
        instance = ClusteredGraph(graph=graph, partition=Partition.from_labels([0, 1]))
        report = validate_instance(instance)
        assert not report.ok

    def test_irregular_degree_warning(self):
        # a star graph has a huge degree ratio
        star = Graph(6, [(0, i) for i in range(1, 6)])
        instance = ClusteredGraph(graph=star, partition=Partition.trivial(6))
        report = validate_instance(instance, check_spectral=False)
        assert report.ok  # warnings only
        assert any("degree ratio" in w for w in report.warnings)

    def test_small_upsilon_warning(self):
        # a near-random graph clustered arbitrarily has tiny Upsilon
        inst = planted_partition(60, 2, 0.3, 0.3, seed=0, ensure_connected=True)
        report = validate_instance(inst, min_upsilon=5.0)
        assert any("Υ" in w or "gap parameter" in w for w in report.warnings) or not report.ok

    def test_check_spectral_false_skips_structure(self, four_clique_instance):
        report = validate_instance(four_clique_instance, check_spectral=False)
        assert report.structure == {}
