"""Unit tests for the spectral toolbox."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    analyse_cluster_structure,
    cluster_gap,
    complete_graph,
    cycle_graph,
    cycle_of_cliques,
    gap_parameter_upsilon,
    lazy_mixing_time_bound,
    random_walk_eigenvalues,
    spectral_decomposition,
    spectral_gap,
    theoretical_round_count,
    top_eigenpairs,
    top_eigenvector_projection,
)


class TestEigenvalues:
    def test_leading_eigenvalue_is_one(self, four_clique_instance):
        vals = random_walk_eigenvalues(four_clique_instance.graph)
        assert vals[0] == pytest.approx(1.0, abs=1e-9)

    def test_eigenvalues_sorted_descending(self, four_clique_instance):
        vals = random_walk_eigenvalues(four_clique_instance.graph)
        assert np.all(np.diff(vals) <= 1e-12)

    def test_eigenvalues_in_unit_interval(self, small_graph):
        vals = random_walk_eigenvalues(small_graph)
        assert vals.max() <= 1.0 + 1e-9
        assert vals.min() >= -1.0 - 1e-9

    def test_complete_graph_spectrum(self):
        # K_n random walk: eigenvalues 1 and -1/(n-1) with multiplicity n-1
        vals = random_walk_eigenvalues(complete_graph(6))
        assert vals[0] == pytest.approx(1.0)
        assert np.allclose(vals[1:], -1.0 / 5.0, atol=1e-9)

    def test_cycle_graph_spectrum(self):
        # C_n eigenvalues are cos(2 pi j / n)
        n = 8
        vals = random_walk_eigenvalues(cycle_graph(n))
        expected = np.sort(np.cos(2 * np.pi * np.arange(n) / n))[::-1]
        assert np.allclose(np.sort(vals), np.sort(expected), atol=1e-9)

    def test_num_parameter_truncates(self, four_clique_instance):
        dec = spectral_decomposition(four_clique_instance.graph, num=3)
        assert dec.count == 3
        with pytest.raises(IndexError):
            dec.lambda_(4)

    def test_bipartite_minus_one(self):
        vals = random_walk_eigenvalues(cycle_graph(6))
        assert vals.min() == pytest.approx(-1.0, abs=1e-9)


class TestEigenvectors:
    def test_orthonormal(self, four_clique_instance):
        dec = spectral_decomposition(four_clique_instance.graph)
        gram = dec.eigenvectors.T @ dec.eigenvectors
        assert np.allclose(gram, np.eye(dec.count), atol=1e-8)

    def test_eigen_equation_regular(self, caveman_instance):
        g = caveman_instance.graph
        dec = spectral_decomposition(g)
        p = g.random_walk_matrix(sparse=False)
        for i in (1, 2, 5):
            f = dec.f(i)
            assert np.allclose(p @ f, dec.lambda_(i) * f, atol=1e-8)

    def test_projection_matrix_idempotent(self, four_clique_instance):
        q = top_eigenvector_projection(four_clique_instance.graph, 4)
        assert np.allclose(q @ q, q, atol=1e-8)
        assert np.allclose(q, q.T, atol=1e-10)
        assert np.trace(q) == pytest.approx(4.0, abs=1e-8)

    def test_top_eigenpairs_shapes(self, four_clique_instance):
        vals, vecs = top_eigenpairs(four_clique_instance.graph, 4)
        assert vals.shape == (4,)
        assert vecs.shape == (four_clique_instance.graph.n, 4)


class TestClusterStructureQuantities:
    def test_gap_reflects_cluster_count(self, four_clique_instance):
        g = four_clique_instance.graph
        # λ_4 close to 1 (4 clusters), λ_5 far from 1
        vals = random_walk_eigenvalues(g, num=5)
        assert vals[3] > 0.9
        assert vals[4] < 0.6
        assert cluster_gap(g, 4) > 0.4

    def test_spectral_gap_positive_for_connected(self, expander_instance):
        assert spectral_gap(expander_instance.graph) > 0.0

    def test_upsilon_large_for_well_clustered(self, four_clique_instance):
        ups = gap_parameter_upsilon(
            four_clique_instance.graph, four_clique_instance.partition
        )
        assert ups > 20.0

    def test_upsilon_infinite_for_single_cluster(self):
        from repro.graphs import random_regular_graph

        inst = random_regular_graph(40, 6, seed=0)
        assert gap_parameter_upsilon(inst.graph, inst.partition) == float("inf")

    def test_theoretical_round_count_grows_with_n(self):
        small = cycle_of_cliques(4, 10, seed=0)
        large = cycle_of_cliques(4, 30, seed=0)
        assert theoretical_round_count(large.graph, 4) >= theoretical_round_count(small.graph, 4)

    def test_mixing_time_much_larger_than_T(self, four_clique_instance):
        g = four_clique_instance.graph
        t_local = theoretical_round_count(g, 4)
        t_mix = lazy_mixing_time_bound(g)
        assert t_mix > t_local  # the Kempe–McSherry comparison of Section 1.3

    def test_analyse_cluster_structure_report(self, four_clique_instance):
        report = analyse_cluster_structure(
            four_clique_instance.graph, four_clique_instance.partition
        )
        d = report.as_dict()
        assert d["k"] == 4
        assert d["upsilon"] > 10
        assert report.gap == pytest.approx(1.0 - report.lambda_k_plus_1)
        assert report.rounds_T >= 1
        assert isinstance(report.satisfies_gap_condition, bool)
