"""Unit tests for graph / partition IO."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    Graph,
    GraphError,
    Partition,
    cycle_of_cliques,
    read_edge_list,
    read_metis,
    read_partition,
    write_edge_list,
    write_metis,
    write_partition,
)


@pytest.fixture()
def sample_graph():
    return cycle_of_cliques(3, 8, seed=0).graph


class TestEdgeList:
    def test_roundtrip(self, tmp_path, sample_graph):
        path = tmp_path / "graph.edges"
        write_edge_list(sample_graph, path)
        assert read_edge_list(path) == sample_graph

    def test_header_preserves_isolated_nodes(self, tmp_path):
        g = Graph(5, [(0, 1)])  # nodes 2..4 isolated
        path = tmp_path / "iso.edges"
        write_edge_list(g, path)
        back = read_edge_list(path)
        assert back.n == 5
        assert back.num_edges == 1

    def test_reads_plain_edge_list_without_header(self, tmp_path):
        path = tmp_path / "plain.edges"
        path.write_text("0 1\n1 2\n# comment\n2 0\n")
        g = read_edge_list(path)
        assert g.n == 3 and g.num_edges == 3

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("0\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_name_defaults_to_stem(self, tmp_path, sample_graph):
        path = tmp_path / "mygraph.edges"
        write_edge_list(sample_graph, path)
        assert read_edge_list(path).name == "mygraph"


class TestMetis:
    def test_roundtrip(self, tmp_path, sample_graph):
        path = tmp_path / "graph.metis"
        write_metis(sample_graph, path)
        assert read_metis(path) == sample_graph

    def test_header_counts(self, tmp_path, sample_graph):
        path = tmp_path / "graph.metis"
        write_metis(sample_graph, path)
        first_line = path.read_text().splitlines()[0].split()
        assert int(first_line[0]) == sample_graph.n
        assert int(first_line[1]) == sample_graph.num_edges

    def test_roundtrip_with_isolated_node(self, tmp_path):
        # Isolated nodes produce blank adjacency lines, which the reader must
        # keep (they are rows, not formatting).
        g = Graph(4, [(0, 1), (1, 2)])  # node 3 isolated
        path = tmp_path / "iso.metis"
        write_metis(g, path)
        back = read_metis(path)
        assert back == g
        assert back.degree(3) == 0

    def test_tolerates_trailing_blank_lines(self, tmp_path):
        path = tmp_path / "trail.metis"
        path.write_text("2 1\n2\n1\n\n\n")
        g = read_metis(path)
        assert g.n == 2 and g.num_edges == 1

    def test_wrong_line_count_raises(self, tmp_path):
        path = tmp_path / "bad.metis"
        path.write_text("3 1\n2\n")
        with pytest.raises(GraphError):
            read_metis(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.metis"
        path.write_text("")
        with pytest.raises(GraphError):
            read_metis(path)


class TestPartitionIO:
    def test_roundtrip(self, tmp_path):
        p = Partition.from_labels([0, 0, 1, 2, 1])
        path = tmp_path / "labels.txt"
        write_partition(p, path)
        assert read_partition(path) == p

    def test_single_node(self, tmp_path):
        p = Partition.from_labels([0])
        path = tmp_path / "one.txt"
        write_partition(p, path)
        assert read_partition(path) == p


class TestStreamedEdgeListWrite:
    def test_mmap_output_identical_to_dense(self, tmp_path):
        from repro.graphs import MmapStorage, planted_partition

        g = planted_partition(80, 2, 0.4, 0.05, seed=3).graph
        indptr, indices = g.csr_arrays()
        entry = tmp_path / "g.csr"
        MmapStorage.write(entry, np.asarray(indptr), np.asarray(indices), shard_arcs=50)
        mm = Graph.from_storage(MmapStorage(entry), name=g.name)

        dense_path, mmap_path = tmp_path / "dense.txt", tmp_path / "mmap.txt"
        write_edge_list(g, dense_path)
        write_edge_list(mm, mmap_path)
        assert dense_path.read_bytes() == mmap_path.read_bytes()
        assert read_edge_list(mmap_path) == g

    def test_write_never_materialises_indices(self, tmp_path, monkeypatch):
        from repro.graphs import MmapStorage, planted_partition

        g = planted_partition(60, 2, 0.4, 0.05, seed=1).graph
        indptr, indices = g.csr_arrays()
        entry = tmp_path / "g.csr"
        MmapStorage.write(entry, np.asarray(indptr), np.asarray(indices), shard_arcs=40)
        mm = Graph.from_storage(MmapStorage(entry))

        def _boom(self):  # pragma: no cover - failure path
            raise AssertionError("write_edge_list must stream row blocks")

        monkeypatch.setattr(MmapStorage, "indices_array", _boom)
        write_edge_list(mm, tmp_path / "out.txt")
        assert read_edge_list(tmp_path / "out.txt") == g

    def test_self_loops_written_once(self, tmp_path):
        g = Graph(3, [(0, 0), (0, 1), (1, 2)])
        out = tmp_path / "loops.txt"
        write_edge_list(g, out)
        body = [l for l in out.read_text().splitlines() if not l.startswith(("%", "#"))]
        assert body == ["0 0", "0 1", "1 2"]
