"""Tests for the pluggable CSR storage layer (dense and memory-mapped)."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.graphs import (
    CSRStorageError,
    DenseStorage,
    Graph,
    MmapStorage,
    planted_partition,
)


@pytest.fixture(scope="module")
def instance():
    return planted_partition(150, 3, 0.3, 0.02, seed=11, ensure_connected=True)


@pytest.fixture()
def sharded_dir(tmp_path, instance):
    indptr, indices = instance.graph.csr_arrays()
    directory = tmp_path / "entry.csr"
    MmapStorage.write(
        directory, np.asarray(indptr), np.asarray(indices), shard_arcs=400,
        extra={"marker": "x"},
    )
    return directory


class TestDenseStorage:
    def test_round_trip_and_shape(self, instance):
        indptr, indices = instance.graph.csr_arrays()
        store = DenseStorage(indptr, indices)
        assert store.n == instance.graph.n
        assert store.num_arcs == indices.size
        assert store.in_memory
        assert store.nbytes == indptr.nbytes + indices.nbytes
        assert np.array_equal(store.indices_array(), indices)

    def test_zero_copy_adoption(self):
        indptr = np.array([0, 1, 2], dtype=np.int64)
        indices = np.array([1, 0], dtype=np.int64)
        store = DenseStorage(indptr, indices)
        assert np.shares_memory(store.indices_array(), indices)
        assert store.materialize() is store

    def test_row_blocks_cover_everything(self, instance):
        indptr, indices = instance.graph.csr_arrays()
        store = DenseStorage(indptr, indices)
        for block_size in (1, 7, 64, 10_000):
            parts = list(store.iter_row_blocks(block_size))
            assert parts[0][0] == 0 and parts[-1][1] == store.n
            assert all(r1 - r0 <= block_size for r0, r1, _ in parts)
            assert np.array_equal(np.concatenate([b for _, _, b in parts]), indices)

    def test_invalid_block_size(self, instance):
        store = instance.graph.storage
        with pytest.raises(CSRStorageError):
            list(store.iter_row_blocks(0))


class TestMmapStorage:
    def test_open_matches_dense(self, sharded_dir, instance):
        store = MmapStorage(sharded_dir)
        indptr, indices = instance.graph.csr_arrays()
        assert not store.in_memory
        assert store.num_shards > 1
        assert np.array_equal(store.indptr, indptr)
        assert np.array_equal(store.indices_array(), indices)
        assert store.extra["marker"] == "x"
        assert store.nbytes == indptr.nbytes + 8 * indices.size

    def test_row_slices_match(self, sharded_dir, instance):
        store = MmapStorage(sharded_dir)
        for v in range(instance.graph.n):
            assert np.array_equal(store.row_slice(v), instance.graph.neighbours(v))

    def test_row_blocks_respect_shards(self, sharded_dir, instance):
        store = MmapStorage(sharded_dir)
        _, indices = instance.graph.csr_arrays()
        for block_size in (None, 3, 50):
            parts = list(store.iter_row_blocks(block_size))
            assert np.array_equal(np.concatenate([b for _, _, b in parts]), indices)

    def test_materialize(self, sharded_dir, instance):
        dense = MmapStorage(sharded_dir).materialize()
        assert isinstance(dense, DenseStorage)
        assert np.array_equal(dense.indices_array(), instance.graph.csr_arrays()[1])

    def test_pickles_by_path(self, sharded_dir):
        store = MmapStorage(sharded_dir)
        blob = pickle.dumps(store)
        # The payload must be the manifest path, not the arrays.
        assert len(blob) < 1024
        clone = pickle.loads(blob)
        assert np.array_equal(clone.indices_array(), store.indices_array())

    def test_single_row_larger_than_shard(self, tmp_path):
        # A star: row 0 has degree 40, far above shard_arcs=8; the writer
        # must emit one oversized shard rather than split the row.
        edges = np.stack([np.zeros(40, dtype=np.int64), np.arange(1, 41)], axis=1)
        g = Graph.from_edge_array(41, edges)
        indptr, indices = g.csr_arrays()
        directory = tmp_path / "star.csr"
        MmapStorage.write(directory, np.asarray(indptr), np.asarray(indices), shard_arcs=8)
        store = MmapStorage(directory)
        assert np.array_equal(store.indices_array(), indices)
        assert np.array_equal(store.row_slice(0), g.neighbours(0))

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(CSRStorageError):
            MmapStorage(tmp_path)

    def test_truncated_shard_rejected(self, sharded_dir):
        shard_file = sorted(sharded_dir.glob("indices-*.npy"))[0]
        # Rewrite the first shard with too few entries; shards are mapped
        # eagerly, so opening the storage must fail loudly instead of
        # serving a wrong adjacency.
        np.save(shard_file, np.zeros(1, dtype=np.int64))
        with pytest.raises(CSRStorageError):
            MmapStorage(sharded_dir)

    def test_arrays_are_read_only(self, sharded_dir, instance):
        mm = MmapStorage(sharded_dir)
        dense = instance.graph.storage
        for store in (mm, dense):
            assert not store.indptr.flags.writeable
            assert not store.indices_array().flags.writeable
            assert not store.row_slice(0).flags.writeable

    def test_survives_entry_deletion_while_open(self, sharded_dir, instance):
        """POSIX unlink-while-mapped: a cache prune racing a live mmap graph
        must not break the graph already holding the mapping."""
        import shutil

        store = MmapStorage(sharded_dir)
        expected = instance.graph.csr_arrays()[1]
        shutil.rmtree(sharded_dir)
        assert np.array_equal(store.indices_array(), expected)
        parts = [b for _, _, b in store.iter_row_blocks(11)]
        assert np.array_equal(np.concatenate(parts), expected)

    def test_graph_from_storage_counts(self, sharded_dir, instance):
        g = Graph.from_storage(MmapStorage(sharded_dir), name="mm")
        assert g == instance.graph
        assert g.num_edges == instance.graph.num_edges
        assert g.num_self_loops == instance.graph.num_self_loops
        assert g.volume == instance.graph.volume

    def test_graph_accessors_storage_agnostic(self, sharded_dir, instance):
        rng = np.random.default_rng(5)
        g = Graph.from_storage(MmapStorage(sharded_dir))
        ref = instance.graph
        assert g.degrees.tolist() == ref.degrees.tolist()
        assert g.has_edge(0, int(ref.neighbours(0)[0]))
        assert not g.has_edge(0, 0)
        assert int(g.random_neighbour(3, rng)) in set(ref.neighbours(3).tolist())
        assert np.array_equal(g.edge_array(), ref.edge_array())
        assert (g.adjacency_matrix() != ref.adjacency_matrix()).nnz == 0
        assert g.is_connected() == ref.is_connected()
        sub = g.induced_subgraph(range(30))
        assert sub == ref.induced_subgraph(range(30))


class TestShardWriter:
    def _reference(self, tmp_path, indptr, indices, shard_arcs):
        ref_dir = tmp_path / "ref.csr"
        MmapStorage.write(ref_dir, indptr, indices, shard_arcs=shard_arcs)
        return {p.name: p.read_bytes() for p in sorted(ref_dir.iterdir())}

    @pytest.mark.parametrize("rows_per_append", [1, 3, 17, 1000])
    def test_chunked_appends_byte_identical(self, tmp_path, instance, rows_per_append):
        # Any chunking of whole rows must produce exactly the bytes of the
        # one-shot materialising write (same shards, same manifest).
        from repro.graphs import ShardWriter

        indptr, indices = instance.graph.csr_arrays()
        counts = np.diff(indptr)
        expected = self._reference(tmp_path, indptr, indices, shard_arcs=400)
        out = tmp_path / f"chunked-{rows_per_append}.csr"
        writer = ShardWriter(out, instance.graph.n, shard_arcs=400)
        for r0 in range(0, instance.graph.n, rows_per_append):
            r1 = min(instance.graph.n, r0 + rows_per_append)
            writer.append_rows(counts[r0:r1], indices[indptr[r0] : indptr[r1]])
        writer.finalise()
        got = {p.name: p.read_bytes() for p in sorted(out.iterdir())}
        assert got == expected

    def test_zero_degree_tail_rows_join_open_shard(self, tmp_path):
        # The flush rule cuts strictly greater than the limit, so trailing
        # zero-arc rows stay in the open shard instead of forcing a cut.
        from repro.graphs import ShardWriter

        writer = ShardWriter(tmp_path / "t.csr", 5, shard_arcs=4)
        writer.append_rows(np.array([2, 2]), np.array([1, 2, 0, 3]))
        writer.append_rows(np.array([0, 0, 0]), np.empty(0, dtype=np.int64))
        writer.finalise()
        store = MmapStorage(tmp_path / "t.csr")
        assert store.num_shards == 1
        assert store.n == 5

    def test_too_many_rows_rejected(self, tmp_path):
        from repro.graphs import ShardWriter

        writer = ShardWriter(tmp_path / "w.csr", 2)
        with pytest.raises(CSRStorageError, match="exceeds n"):
            writer.append_rows(np.array([0, 0, 0]), np.empty(0, dtype=np.int64))

    def test_count_sum_mismatch_rejected(self, tmp_path):
        from repro.graphs import ShardWriter

        writer = ShardWriter(tmp_path / "w.csr", 3)
        with pytest.raises(CSRStorageError, match="sum to"):
            writer.append_rows(np.array([2]), np.array([1]))

    def test_negative_count_rejected(self, tmp_path):
        from repro.graphs import ShardWriter

        writer = ShardWriter(tmp_path / "w.csr", 3)
        with pytest.raises(CSRStorageError, match="negative"):
            writer.append_rows(np.array([-1, 1]), np.empty(0, dtype=np.int64))

    def test_finalise_requires_all_rows(self, tmp_path):
        from repro.graphs import ShardWriter

        writer = ShardWriter(tmp_path / "w.csr", 3)
        writer.append_rows(np.array([1]), np.array([2]))
        with pytest.raises(CSRStorageError, match="finalise after 1 of 3"):
            writer.finalise()

    def test_use_after_finalise_rejected(self, tmp_path):
        from repro.graphs import ShardWriter

        writer = ShardWriter(tmp_path / "w.csr", 1)
        writer.append_rows(np.array([1]), np.array([0]))
        writer.finalise()
        with pytest.raises(CSRStorageError, match="already finalised"):
            writer.append_rows(np.array([0]), np.empty(0, dtype=np.int64))
        with pytest.raises(CSRStorageError, match="already finalised"):
            writer.finalise()

    def test_invalid_shard_arcs(self, tmp_path):
        from repro.graphs import ShardWriter

        with pytest.raises(CSRStorageError, match="shard_arcs"):
            ShardWriter(tmp_path / "w.csr", 1, shard_arcs=0)
