"""Unit tests for the LFR-style benchmark generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import GraphError, lfr_benchmark, truncated_power_law


class TestTruncatedPowerLaw:
    def test_support_respected(self):
        rng = np.random.default_rng(0)
        samples = truncated_power_law(2.5, 3, 12, 2000, rng)
        assert samples.min() >= 3
        assert samples.max() <= 12

    def test_heavier_mass_on_small_values(self):
        rng = np.random.default_rng(1)
        samples = truncated_power_law(2.5, 2, 50, 5000, rng)
        assert np.mean(samples <= 5) > np.mean(samples >= 30)

    def test_larger_exponent_means_smaller_values(self):
        rng = np.random.default_rng(2)
        steep = truncated_power_law(3.5, 2, 50, 4000, rng).mean()
        shallow = truncated_power_law(1.5, 2, 50, 4000, rng).mean()
        assert steep < shallow

    def test_invalid_parameters(self):
        rng = np.random.default_rng(0)
        with pytest.raises(GraphError):
            truncated_power_law(2.0, 0, 5, 10, rng)
        with pytest.raises(GraphError):
            truncated_power_law(2.0, 5, 3, 10, rng)
        with pytest.raises(GraphError):
            truncated_power_law(-1.0, 2, 5, 10, rng)


class TestLFRBenchmark:
    def test_basic_generation(self):
        instance = lfr_benchmark(300, mu=0.1, average_degree=12, seed=0)
        assert instance.graph.n == 300
        assert instance.graph.is_connected()
        assert instance.partition.k >= 2
        assert instance.params["generator"] == "lfr_benchmark"

    def test_mu_controls_mixing(self):
        """Larger mu => larger fraction of inter-community edges."""

        def external_fraction(mu):
            instance = lfr_benchmark(300, mu=mu, average_degree=12, seed=3)
            labels = instance.partition.labels
            edges = instance.graph.edge_array()
            external = np.sum(labels[edges[:, 0]] != labels[edges[:, 1]])
            return external / edges.shape[0]

        assert external_fraction(0.05) < external_fraction(0.4)

    def test_realized_mixing_and_degree_match_request(self):
        """The batched samplers must hit the requested mu and average degree
        in expectation — a collapsed internal-edge draw (e.g. rejection
        sampling with 1/C acceptance) shows up here as doubled mixing and
        halved degree."""
        mus, degs = [], []
        for seed in range(3):
            instance = lfr_benchmark(
                2000, mu=0.1, average_degree=10, seed=seed, ensure_connected=False
            )
            labels = instance.partition.labels
            edges = instance.graph.edge_array()
            mus.append(float(np.mean(labels[edges[:, 0]] != labels[edges[:, 1]])))
            degs.append(2.0 * instance.graph.num_edges / instance.graph.n)
        assert abs(np.mean(mus) - 0.1) < 0.04, f"realized mu {np.mean(mus):.3f}"
        # The truncated power law's mean sits a little below average_degree;
        # the bound only needs to catch collapse/doubling, not bias < 20 %.
        assert 7.0 < np.mean(degs) < 13.0, f"mean degree {np.mean(degs):.2f}"

    def test_singleton_communities_supported(self):
        # min_community=1 permits size-1 communities, whose lone member can
        # only be repaired by attaching outside the community.
        instance = lfr_benchmark(
            1000, mu=0.1, min_community=1, seed=0, ensure_connected=False
        )
        assert instance.graph.min_degree >= 1

    def test_internal_edges_respect_community_capacity(self):
        """Per-community quotas: no community can hold more internal edges
        than it has distinct pairs (saturation must not spill elsewhere)."""
        instance = lfr_benchmark(
            500, mu=0.0, average_degree=12, seed=2, ensure_connected=False
        )
        labels = instance.partition.labels
        edges = instance.graph.edge_array()
        sizes = np.bincount(labels)
        internal = np.bincount(
            labels[edges[:, 0]], minlength=sizes.size,
            weights=(labels[edges[:, 0]] == labels[edges[:, 1]]).astype(float),
        )
        # mu=0: the only cross-community edges are isolated-node repairs.
        assert np.all(internal <= sizes * (sizes - 1) // 2)

    def test_degrees_heterogeneous(self):
        instance = lfr_benchmark(300, mu=0.1, average_degree=12, seed=4)
        assert instance.graph.degree_ratio() > 1.5

    def test_determinism(self):
        a = lfr_benchmark(200, mu=0.1, seed=7)
        b = lfr_benchmark(200, mu=0.1, seed=7)
        assert a.graph == b.graph
        assert a.partition == b.partition

    def test_invalid_parameters(self):
        with pytest.raises(GraphError):
            lfr_benchmark(100, mu=1.0)
        with pytest.raises(GraphError):
            lfr_benchmark(5)
        with pytest.raises(GraphError):
            lfr_benchmark(50, min_community=100)

    def test_clustering_algorithm_degrades_gracefully_on_lfr(self):
        """The paper's assumptions (regularity, balance) are violated here, so
        we only ask for a non-trivial recovery at low mixing."""
        from repro.core import AlgorithmParameters, CentralizedClustering
        from repro.evaluation import normalized_mutual_information

        instance = lfr_benchmark(250, mu=0.05, average_degree=14, seed=9)
        params = AlgorithmParameters.from_instance(instance.graph, instance.partition)
        result = CentralizedClustering(instance.graph, params, seed=1).run(keep_loads=False)
        nmi = normalized_mutual_information(result.partition, instance.partition)
        assert nmi > 0.5


class TestLFRChunkStream:
    def test_chunk_stream_reproduces_in_ram_instance(self):
        from repro.graphs import lfr_benchmark_chunks
        from repro.graphs.generators import _instance_from_chunk_streams

        reference = lfr_benchmark(300, mu=0.15, average_degree=10, seed=8)
        streamed = _instance_from_chunk_streams(
            lfr_benchmark_chunks(300, mu=0.15, average_degree=10, seed=8)
        )
        assert streamed.graph == reference.graph
        assert np.array_equal(streamed.partition.labels, reference.partition.labels)
        assert streamed.params == reference.params

    def test_validation_is_eager(self):
        from repro.graphs import lfr_benchmark_chunks

        with pytest.raises(GraphError, match="mu"):
            lfr_benchmark_chunks(100, mu=1.5)
        with pytest.raises(GraphError, match="at least 10"):
            lfr_benchmark_chunks(5)
        with pytest.raises(GraphError, match="min_community"):
            lfr_benchmark_chunks(20, min_community=50)

    def test_keys_follow_fused_protocol(self):
        from repro.graphs import lfr_benchmark_chunks

        stream = next(lfr_benchmark_chunks(200, mu=0.2, average_degree=8, seed=1))
        keys = np.concatenate(list(stream.chunks))
        n = stream.n
        u, v = keys // n, keys % n
        assert keys.size == np.unique(keys).size
        assert (u >= 0).all() and (v < n).all() and (u <= v).all()
        # every node is covered (post-repair min degree 1)
        assert np.union1d(u, v).size == n

    def test_exhaustion_raises_graph_error(self):
        from repro.graphs import lfr_benchmark_chunks

        # mu ~ 1 with a tiny degree budget cannot come out connected; the
        # attempt stream must raise once max_connect_attempts are consumed.
        attempts = lfr_benchmark_chunks(
            40, mu=0.99, average_degree=2, min_community=1,
            seed=0, ensure_connected=True, max_connect_attempts=2,
        )
        with pytest.raises(GraphError, match="failed to generate"):
            for stream in attempts:
                for _ in stream.chunks:
                    pass
