"""Unit tests for conductance, volume and sweep cuts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    Graph,
    cluster_conductances,
    complete_graph,
    conductance,
    cut_size,
    cycle_graph,
    cycle_of_cliques,
    degree_volume,
    inner_conductance,
    k_way_expansion_of_partition,
    normalized_cut,
    sweep_cut,
    volume,
)
from repro.graphs.partition import Partition


class TestCutAndVolume:
    def test_cut_size_cycle(self):
        g = cycle_graph(6)
        assert cut_size(g, [0, 1, 2]) == 2

    def test_cut_size_full_set(self):
        g = cycle_graph(6)
        assert cut_size(g, range(6)) == 0

    def test_volume_paper_definition(self):
        # K4: taking 2 nodes, edges touching them = 5 (1 internal + 4 crossing... )
        g = complete_graph(4)
        # edges with at least one endpoint in {0,1}: (0,1),(0,2),(0,3),(1,2),(1,3) = 5
        assert volume(g, [0, 1]) == 5
        assert degree_volume(g, [0, 1]) == 6

    def test_volume_counts_internal_once(self):
        g = complete_graph(3)
        assert volume(g, [0, 1, 2]) == 3

    def test_out_of_range_raises(self):
        g = cycle_graph(4)
        with pytest.raises(ValueError):
            cut_size(g, [5])


class TestConductance:
    def test_conductance_cycle_half(self):
        g = cycle_graph(8)
        # half of the cycle: cut = 2, vol = #edges touching = 4 internal + 2 crossing = 5... let's compute:
        # nodes 0..3, internal edges (0,1),(1,2),(2,3) = 3, crossing (3,4),(7,0) = 2 -> vol=5
        assert conductance(g, [0, 1, 2, 3]) == pytest.approx(2 / 5)

    def test_conductance_single_node(self):
        g = complete_graph(5)
        assert conductance(g, [0]) == pytest.approx(1.0)

    def test_conductance_full_graph_zero(self):
        g = complete_graph(5)
        assert conductance(g, range(5)) == 0.0

    def test_conductance_empty_raises(self):
        with pytest.raises(ValueError):
            conductance(cycle_graph(4), [])

    def test_conductance_at_most_one(self, four_clique_instance):
        g = four_clique_instance.graph
        rng = np.random.default_rng(0)
        for _ in range(20):
            size = rng.integers(1, g.n)
            subset = rng.choice(g.n, size=size, replace=False)
            assert 0.0 <= conductance(g, subset) <= 1.0

    def test_cluster_has_low_conductance(self, four_clique_instance):
        g, p = four_clique_instance.graph, four_clique_instance.partition
        phis = cluster_conductances(g, p)
        assert np.all(phis < 0.05)

    def test_isolated_set_zero_volume_raises(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(ValueError):
            conductance(g, [2])


class TestKWayExpansion:
    def test_expansion_of_ground_truth_small(self, four_clique_instance):
        rho = k_way_expansion_of_partition(
            four_clique_instance.graph, four_clique_instance.partition
        )
        assert 0 < rho < 0.05

    def test_expansion_single_cluster_zero(self):
        g = complete_graph(5)
        assert k_way_expansion_of_partition(g, Partition.trivial(5)) == 0.0

    def test_random_partition_has_higher_expansion(self, four_clique_instance):
        g, truth = four_clique_instance.graph, four_clique_instance.partition
        rng = np.random.default_rng(1)
        random_partition = Partition.from_labels(rng.integers(0, 4, size=g.n))
        assert k_way_expansion_of_partition(g, random_partition) > k_way_expansion_of_partition(
            g, truth
        )

    def test_normalized_cut_nonnegative(self, four_clique_instance):
        assert normalized_cut(four_clique_instance.graph, four_clique_instance.partition) >= 0.0


class TestInnerConductance:
    def test_clique_inner_conductance_high(self, four_clique_instance):
        g, p = four_clique_instance.graph, four_clique_instance.partition
        # a clique is an excellent expander
        assert inner_conductance(g, p.cluster(0)) > 0.3

    def test_tiny_set(self):
        assert inner_conductance(complete_graph(5), [0]) == 1.0


class TestSweepCut:
    def test_sweep_recovers_planted_cut(self, two_clique_instance):
        g, p = two_clique_instance.graph, two_clique_instance.partition
        # score = indicator of cluster 0: the best prefix is exactly cluster 0
        score = p.indicator(0, normalised=False).astype(float)
        nodes, phi = sweep_cut(g, score)
        assert set(nodes.tolist()) == set(p.cluster(0).tolist())
        assert phi == pytest.approx(
            conductance(g, p.cluster(0))
        )

    def test_sweep_with_spectral_score(self, two_clique_instance):
        from repro.graphs import spectral_decomposition

        g, p = two_clique_instance.graph, two_clique_instance.partition
        f2 = spectral_decomposition(g, num=2).f(2)
        nodes, phi = sweep_cut(g, f2)
        assert phi <= 0.05
        # the returned set is (close to) one of the two cliques
        overlap0 = len(set(nodes.tolist()) & set(p.cluster(0).tolist()))
        overlap1 = len(set(nodes.tolist()) & set(p.cluster(1).tolist()))
        assert max(overlap0, overlap1) >= 10

    def test_sweep_respects_max_size(self, two_clique_instance):
        g = two_clique_instance.graph
        score = np.arange(g.n, dtype=float)
        nodes, _ = sweep_cut(g, score, max_size=5)
        assert len(nodes) <= 5

    def test_sweep_rejects_bad_shape(self, two_clique_instance):
        with pytest.raises(ValueError):
            sweep_cut(two_clique_instance.graph, np.ones(3))


def _legacy_cluster_conductances(graph, partition) -> np.ndarray:
    """The pre-streaming per-cluster O(k·m) implementation, kept as an oracle.

    One membership mask and one full arc scan per cluster — the exact
    arithmetic (integer cut/volume counts, one float64 division each) the
    seed's loop performed, so the streamed one-sweep accumulator must match
    it bit for bit, not approximately.
    """
    indptr, indices = graph.csr_arrays()
    degrees = graph.degrees
    rows = np.repeat(np.arange(graph.n, dtype=np.int64), np.diff(indptr))
    labels = partition.labels
    phis = np.empty(partition.k, dtype=np.float64)
    for c in range(partition.k):
        mask = labels == c
        u_in = mask[rows]
        v_in = mask[np.asarray(indices)]
        cut_arcs = int(np.count_nonzero(u_in != v_in))
        both = u_in & v_in
        loops = int(np.count_nonzero(both & (rows == np.asarray(indices))))
        internal = (int(np.count_nonzero(both)) - loops) // 2
        vol = int(degrees[mask].sum()) - internal
        phis[c] = np.float64(cut_arcs // 2) / np.float64(vol)
    return phis


def _mmap_twin(graph, directory, *, shard_arcs):
    from repro.graphs import MmapStorage

    indptr, indices = graph.csr_arrays()
    MmapStorage.write(
        directory, np.asarray(indptr), np.asarray(indices), shard_arcs=shard_arcs
    )
    return Graph.from_storage(MmapStorage(directory))


class TestStreamedParity:
    """The one-sweep accumulator vs the legacy per-cluster oracle, pinned
    bit-identical across storage backends and every block size."""

    def _instances(self):
        from repro.graphs import planted_partition, ring_of_expanders

        yield planted_partition(120, 4, 0.4, 0.05, seed=3)
        yield ring_of_expanders(3, 20, 6, seed=4)
        yield cycle_of_cliques(2, 9, seed=5)

    def test_matches_legacy_oracle_bitwise(self):
        for instance in self._instances():
            g, p = instance.graph, instance.partition
            streamed = cluster_conductances(g, p)
            oracle = _legacy_cluster_conductances(g, p)
            assert np.array_equal(streamed, oracle)

    def test_block_size_invariance_dense(self, four_clique_instance):
        g, p = four_clique_instance.graph, four_clique_instance.partition
        reference = cluster_conductances(g, p)
        for block_size in (1, 2, 7, 13, g.n, 10 * g.n):
            assert np.array_equal(
                cluster_conductances(g, p, block_size=block_size), reference
            )

    def test_mmap_backend_parity(self, four_clique_instance, tmp_path):
        g, p = four_clique_instance.graph, four_clique_instance.partition
        reference = cluster_conductances(g, p)
        oracle = _legacy_cluster_conductances(g, p)
        assert np.array_equal(reference, oracle)
        for shard_arcs in (16, 97, 10**6):
            mm = _mmap_twin(g, tmp_path / f"twin-{shard_arcs}.csr", shard_arcs=shard_arcs)
            assert np.array_equal(cluster_conductances(mm, p), reference)
            for block_size in (1, 5, mm.n):
                assert np.array_equal(
                    cluster_conductances(mm, p, block_size=block_size), reference
                )

    def test_scalar_metrics_parity_across_backends(self, four_clique_instance, tmp_path):
        g, p = four_clique_instance.graph, four_clique_instance.partition
        nodes = p.cluster(0)
        mm = _mmap_twin(g, tmp_path / "twin.csr", shard_arcs=31)
        for block_size in (None, 1, 7, g.n):
            assert cut_size(mm, nodes, block_size=block_size) == cut_size(g, nodes)
            assert volume(mm, nodes, block_size=block_size) == volume(g, nodes)
            assert conductance(mm, nodes, block_size=block_size) == conductance(g, nodes)
        assert normalized_cut(mm, p) == normalized_cut(g, p)
        assert k_way_expansion_of_partition(mm, p) == k_way_expansion_of_partition(g, p)

    def test_sweep_cut_backend_and_block_parity(self, two_clique_instance, tmp_path):
        g = two_clique_instance.graph
        score = np.linspace(1.0, 0.0, g.n)
        ref_nodes, ref_phi = sweep_cut(g, score)
        mm = _mmap_twin(g, tmp_path / "twin.csr", shard_arcs=23)
        for block_size in (None, 1, 4, g.n):
            nodes, phi = sweep_cut(mm, score, block_size=block_size)
            assert np.array_equal(nodes, ref_nodes)
            assert phi == ref_phi

    def test_partition_cut_metrics_fields(self, four_clique_instance):
        from repro.graphs import partition_cut_metrics

        g, p = four_clique_instance.graph, four_clique_instance.partition
        metrics = partition_cut_metrics(g, p)
        assert metrics.k == p.k
        # every arc is accounted exactly once: cut + internal + loops = 2m - loops... in arc terms:
        total_arcs = int(metrics.cut_arcs.sum() + metrics.internal_arcs.sum() + metrics.loop_arcs.sum())
        assert total_arcs == g.storage.num_arcs
        assert int(metrics.degree_volumes.sum()) == int(g.degrees.sum())
        # per-cluster conductances agree with the scalar definition
        for c in range(p.k):
            assert metrics.conductances[c] == conductance(g, p.cluster(c))

    def test_raw_label_array_accepted(self, four_clique_instance):
        from repro.graphs import partition_cut_metrics

        g, p = four_clique_instance.graph, four_clique_instance.partition
        by_partition = partition_cut_metrics(g, p)
        by_labels = partition_cut_metrics(g, np.asarray(p.labels))
        assert np.array_equal(by_partition.conductances, by_labels.conductances)

    def test_zero_volume_cluster_raises(self):
        # two isolated nodes labelled as their own cluster: volume 0
        g = Graph.from_edge_array(4, np.asarray([[0, 1]], dtype=np.int64))
        labels = np.asarray([0, 0, 1, 1])
        with pytest.raises(ValueError, match="zero volume"):
            cluster_conductances(g, labels)
