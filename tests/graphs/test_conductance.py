"""Unit tests for conductance, volume and sweep cuts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    Graph,
    cluster_conductances,
    complete_graph,
    conductance,
    cut_size,
    cycle_graph,
    cycle_of_cliques,
    degree_volume,
    inner_conductance,
    k_way_expansion_of_partition,
    normalized_cut,
    sweep_cut,
    volume,
)
from repro.graphs.partition import Partition


class TestCutAndVolume:
    def test_cut_size_cycle(self):
        g = cycle_graph(6)
        assert cut_size(g, [0, 1, 2]) == 2

    def test_cut_size_full_set(self):
        g = cycle_graph(6)
        assert cut_size(g, range(6)) == 0

    def test_volume_paper_definition(self):
        # K4: taking 2 nodes, edges touching them = 5 (1 internal + 4 crossing... )
        g = complete_graph(4)
        # edges with at least one endpoint in {0,1}: (0,1),(0,2),(0,3),(1,2),(1,3) = 5
        assert volume(g, [0, 1]) == 5
        assert degree_volume(g, [0, 1]) == 6

    def test_volume_counts_internal_once(self):
        g = complete_graph(3)
        assert volume(g, [0, 1, 2]) == 3

    def test_out_of_range_raises(self):
        g = cycle_graph(4)
        with pytest.raises(ValueError):
            cut_size(g, [5])


class TestConductance:
    def test_conductance_cycle_half(self):
        g = cycle_graph(8)
        # half of the cycle: cut = 2, vol = #edges touching = 4 internal + 2 crossing = 5... let's compute:
        # nodes 0..3, internal edges (0,1),(1,2),(2,3) = 3, crossing (3,4),(7,0) = 2 -> vol=5
        assert conductance(g, [0, 1, 2, 3]) == pytest.approx(2 / 5)

    def test_conductance_single_node(self):
        g = complete_graph(5)
        assert conductance(g, [0]) == pytest.approx(1.0)

    def test_conductance_full_graph_zero(self):
        g = complete_graph(5)
        assert conductance(g, range(5)) == 0.0

    def test_conductance_empty_raises(self):
        with pytest.raises(ValueError):
            conductance(cycle_graph(4), [])

    def test_conductance_at_most_one(self, four_clique_instance):
        g = four_clique_instance.graph
        rng = np.random.default_rng(0)
        for _ in range(20):
            size = rng.integers(1, g.n)
            subset = rng.choice(g.n, size=size, replace=False)
            assert 0.0 <= conductance(g, subset) <= 1.0

    def test_cluster_has_low_conductance(self, four_clique_instance):
        g, p = four_clique_instance.graph, four_clique_instance.partition
        phis = cluster_conductances(g, p)
        assert np.all(phis < 0.05)

    def test_isolated_set_zero_volume_raises(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(ValueError):
            conductance(g, [2])


class TestKWayExpansion:
    def test_expansion_of_ground_truth_small(self, four_clique_instance):
        rho = k_way_expansion_of_partition(
            four_clique_instance.graph, four_clique_instance.partition
        )
        assert 0 < rho < 0.05

    def test_expansion_single_cluster_zero(self):
        g = complete_graph(5)
        assert k_way_expansion_of_partition(g, Partition.trivial(5)) == 0.0

    def test_random_partition_has_higher_expansion(self, four_clique_instance):
        g, truth = four_clique_instance.graph, four_clique_instance.partition
        rng = np.random.default_rng(1)
        random_partition = Partition.from_labels(rng.integers(0, 4, size=g.n))
        assert k_way_expansion_of_partition(g, random_partition) > k_way_expansion_of_partition(
            g, truth
        )

    def test_normalized_cut_nonnegative(self, four_clique_instance):
        assert normalized_cut(four_clique_instance.graph, four_clique_instance.partition) >= 0.0


class TestInnerConductance:
    def test_clique_inner_conductance_high(self, four_clique_instance):
        g, p = four_clique_instance.graph, four_clique_instance.partition
        # a clique is an excellent expander
        assert inner_conductance(g, p.cluster(0)) > 0.3

    def test_tiny_set(self):
        assert inner_conductance(complete_graph(5), [0]) == 1.0


class TestSweepCut:
    def test_sweep_recovers_planted_cut(self, two_clique_instance):
        g, p = two_clique_instance.graph, two_clique_instance.partition
        # score = indicator of cluster 0: the best prefix is exactly cluster 0
        score = p.indicator(0, normalised=False).astype(float)
        nodes, phi = sweep_cut(g, score)
        assert set(nodes.tolist()) == set(p.cluster(0).tolist())
        assert phi == pytest.approx(
            conductance(g, p.cluster(0))
        )

    def test_sweep_with_spectral_score(self, two_clique_instance):
        from repro.graphs import spectral_decomposition

        g, p = two_clique_instance.graph, two_clique_instance.partition
        f2 = spectral_decomposition(g, num=2).f(2)
        nodes, phi = sweep_cut(g, f2)
        assert phi <= 0.05
        # the returned set is (close to) one of the two cliques
        overlap0 = len(set(nodes.tolist()) & set(p.cluster(0).tolist()))
        overlap1 = len(set(nodes.tolist()) & set(p.cluster(1).tolist()))
        assert max(overlap0, overlap1) >= 10

    def test_sweep_respects_max_size(self, two_clique_instance):
        g = two_clique_instance.graph
        score = np.arange(g.n, dtype=float)
        nodes, _ = sweep_cut(g, score, max_size=5)
        assert len(nodes) <= 5

    def test_sweep_rejects_bad_shape(self, two_clique_instance):
        with pytest.raises(ValueError):
            sweep_cut(two_clique_instance.graph, np.ones(3))
