"""Unit tests for the clustered-graph generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    GraphError,
    almost_regular_clustered_graph,
    binary_tree_graph,
    complete_graph,
    connected_caveman,
    cycle_graph,
    cycle_of_cliques,
    dumbbell_graph,
    grid_graph,
    noisy_clustered_graph,
    path_of_cliques,
    planted_partition,
    random_regular_graph,
    ring_of_expanders,
    stochastic_block_model,
)


class TestSimpleTopologies:
    def test_complete_graph(self):
        g = complete_graph(6)
        assert g.num_edges == 15
        assert g.is_regular() and g.degree(0) == 5

    def test_cycle_graph(self):
        g = cycle_graph(7)
        assert g.num_edges == 7
        assert g.is_regular() and g.degree(3) == 2
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_grid_graph(self):
        g = grid_graph(3, 4)
        assert g.n == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_binary_tree(self):
        g = binary_tree_graph(3)
        assert g.n == 15
        assert g.num_edges == 14
        assert g.is_connected()

    def test_dumbbell(self):
        inst = dumbbell_graph(8)
        assert inst.k == 2
        assert inst.graph.n == 16


class TestCliqueFamilies:
    def test_cycle_of_cliques_structure(self):
        inst = cycle_of_cliques(4, 10, seed=0)
        g = inst.graph
        assert g.n == 40
        # 4 cliques of C(10,2)=45 edges plus 4 bridges
        assert g.num_edges == 4 * 45 + 4
        assert inst.partition.k == 4
        assert g.is_connected()

    def test_two_cliques_single_bridge(self):
        inst = cycle_of_cliques(2, 6, seed=1)
        assert inst.graph.num_edges == 2 * 15 + 1

    def test_path_of_cliques(self):
        inst = path_of_cliques(3, 5, seed=0)
        assert inst.graph.num_edges == 3 * 10 + 2
        assert inst.graph.is_connected()

    def test_connected_caveman_is_regular(self):
        inst = connected_caveman(5, 8)
        assert inst.graph.is_regular()
        assert inst.graph.degree(0) == 7
        assert inst.graph.is_connected()
        assert inst.partition.k == 5

    def test_invalid_parameters(self):
        with pytest.raises(GraphError):
            cycle_of_cliques(1, 10)
        with pytest.raises(GraphError):
            cycle_of_cliques(3, 1)
        with pytest.raises(GraphError):
            connected_caveman(2, 2)


class TestSBM:
    def test_planted_partition_sizes(self):
        inst = planted_partition(100, 4, 0.5, 0.05, seed=0)
        assert inst.graph.n == 100
        assert list(inst.partition.sizes) == [25, 25, 25, 25]

    def test_uneven_sizes(self):
        inst = stochastic_block_model([30, 20, 10], 0.4, 0.02, seed=1)
        assert list(inst.partition.sizes) == [30, 20, 10]

    def test_per_cluster_p_in(self):
        inst = stochastic_block_model([20, 20], [0.8, 0.3], 0.0, seed=2)
        g = inst.graph
        cluster0_edges = sum(1 for u, v in g.edges() if u < 20 and v < 20)
        cluster1_edges = g.num_edges - cluster0_edges
        assert cluster0_edges > cluster1_edges

    def test_p_out_zero_gives_disconnected_clusters(self):
        inst = stochastic_block_model([15, 15], 1.0, 0.0, seed=3)
        components = inst.graph.connected_components()
        assert len(components) == 2

    def test_ensure_connected(self):
        inst = planted_partition(80, 2, 0.4, 0.02, seed=4, ensure_connected=True)
        assert inst.graph.is_connected()

    def test_edge_density_matches_probabilities(self):
        inst = planted_partition(200, 2, 0.3, 0.05, seed=5)
        g = inst.graph
        within_possible = 2 * (100 * 99 // 2)
        across_possible = 100 * 100
        within = sum(
            1 for u, v in g.edges() if (u < 100) == (v < 100)
        )
        across = g.num_edges - within
        assert within / within_possible == pytest.approx(0.3, abs=0.05)
        assert across / across_possible == pytest.approx(0.05, abs=0.02)

    def test_invalid_probability(self):
        with pytest.raises(GraphError):
            planted_partition(10, 2, 1.5, 0.1)
        with pytest.raises(GraphError):
            stochastic_block_model([], 0.5, 0.1)


class TestRegularFamilies:
    def test_random_regular_graph_degrees(self):
        inst = random_regular_graph(60, 6, seed=0)
        assert inst.graph.is_regular()
        assert inst.graph.degree(0) == 6

    def test_random_regular_requires_even_nd(self):
        with pytest.raises(GraphError):
            random_regular_graph(5, 3)

    def test_random_regular_rejects_d_ge_n(self):
        with pytest.raises(GraphError):
            random_regular_graph(5, 5)

    def test_ring_of_expanders(self):
        inst = ring_of_expanders(3, 20, 6, seed=1)
        g = inst.graph
        assert g.n == 60
        assert inst.partition.k == 3
        assert g.is_connected()
        # bridge endpoints gain at most bridges_per_join extra degree
        assert g.max_degree <= 6 + 2
        assert g.min_degree >= 6

    def test_almost_regular_degree_ratio_bounded(self):
        inst = almost_regular_clustered_graph(3, 30, 6, 10, seed=2)
        assert inst.graph.min_degree >= 6
        assert inst.graph.degree_ratio() <= (10 + 2) / 6 + 0.5

    def test_almost_regular_invalid(self):
        with pytest.raises(GraphError):
            almost_regular_clustered_graph(2, 10, 1, 4)
        with pytest.raises(GraphError):
            almost_regular_clustered_graph(2, 10, 8, 4)


class TestNoiseAndDeterminism:
    def test_noisy_graph_adds_edges(self):
        base = cycle_of_cliques(3, 10, seed=0)
        noisy = noisy_clustered_graph(base, 25, seed=1)
        assert noisy.graph.num_edges == base.graph.num_edges + 25
        assert noisy.partition == base.partition

    def test_generators_are_deterministic_in_seed(self):
        a = planted_partition(60, 3, 0.4, 0.05, seed=42)
        b = planted_partition(60, 3, 0.4, 0.05, seed=42)
        assert a.graph == b.graph

    def test_different_seeds_differ(self):
        a = planted_partition(60, 3, 0.4, 0.05, seed=1)
        b = planted_partition(60, 3, 0.4, 0.05, seed=2)
        assert a.graph != b.graph

    def test_params_recorded(self):
        inst = cycle_of_cliques(3, 10, seed=0)
        assert inst.params["generator"] == "cycle_of_cliques"
        assert inst.params["k"] == 3


class TestSBMChunkStream:
    def test_chunk_stream_reproduces_in_ram_instance(self):
        from repro.graphs import stochastic_block_model_chunks
        from repro.graphs.generators import _instance_from_chunk_streams

        reference = stochastic_block_model([30, 25, 20], 0.3, 0.02, seed=7)
        streamed = _instance_from_chunk_streams(
            stochastic_block_model_chunks([30, 25, 20], 0.3, 0.02, seed=7)
        )
        assert streamed.graph == reference.graph
        assert np.array_equal(streamed.partition.labels, reference.partition.labels)
        assert streamed.params == reference.params

    def test_planted_partition_chunks_delegates(self):
        from repro.graphs import planted_partition_chunks
        from repro.graphs.generators import _instance_from_chunk_streams

        reference = planted_partition(100, 4, 0.4, 0.02, seed=11)
        streamed = _instance_from_chunk_streams(
            planted_partition_chunks(100, 4, 0.4, 0.02, seed=11)
        )
        assert streamed.graph == reference.graph
        assert streamed.graph.name == reference.graph.name

    def test_connected_retry_consumes_attempts(self):
        from repro.graphs import stochastic_block_model_chunks

        attempts = stochastic_block_model_chunks(
            [10, 10], 0.3, 0.0, seed=0, ensure_connected=True, max_connect_attempts=3
        )
        with pytest.raises(GraphError, match="could not sample a connected SBM"):
            for stream in attempts:
                for _ in stream.chunks:
                    pass
