"""Unit tests for partitions and the misclassification metric."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    Partition,
    PartitionError,
    best_label_permutation,
    confusion_matrix,
    misclassification_rate,
    misclassified_nodes,
)


class TestConstruction:
    def test_from_labels_normalises(self):
        p = Partition.from_labels([5, 5, 9, 9, 5])
        assert p.k == 2
        assert list(p.labels) == [0, 0, 1, 1, 0]
        assert list(p.sizes) == [3, 2]

    def test_label_order_of_first_appearance(self):
        p = Partition.from_labels([3, 1, 3, 2])
        assert list(p.labels) == [0, 1, 0, 2]

    def test_from_clusters(self):
        p = Partition.from_clusters([[0, 1], [2, 3, 4]])
        assert p.k == 2
        assert p.label_of(4) == 1

    def test_from_clusters_rejects_overlap(self):
        with pytest.raises(PartitionError):
            Partition.from_clusters([[0, 1], [1, 2]])

    def test_from_clusters_rejects_gaps(self):
        with pytest.raises(PartitionError):
            Partition.from_clusters([[0, 1], [3]])

    def test_rejects_empty(self):
        with pytest.raises(PartitionError):
            Partition.from_labels([])

    def test_rejects_negative_labels(self):
        with pytest.raises(PartitionError):
            Partition.from_labels([0, -1])

    def test_trivial_and_singletons(self):
        assert Partition.trivial(5).k == 1
        assert Partition.singletons(5).k == 5


class TestAccessors:
    def test_cluster_members(self):
        p = Partition.from_labels([0, 1, 0, 1, 1])
        assert list(p.cluster(0)) == [0, 2]
        assert list(p.cluster(1)) == [1, 3, 4]

    def test_cluster_out_of_range(self):
        with pytest.raises(PartitionError):
            Partition.trivial(3).cluster(1)

    def test_min_cluster_fraction(self):
        p = Partition.from_labels([0] * 8 + [1] * 2)
        assert p.min_cluster_fraction() == pytest.approx(0.2)

    def test_indicator_normalised(self):
        p = Partition.from_labels([0, 0, 1, 1])
        chi = p.indicator(0)
        assert chi[0] == pytest.approx(0.5)
        assert chi[2] == 0.0
        assert chi.sum() == pytest.approx(1.0)

    def test_indicator_unnormalised(self):
        p = Partition.from_labels([0, 0, 1])
        chi = p.indicator(0, normalised=False)
        assert chi.sum() == 2.0

    def test_indicator_matrix_columns_orthogonal(self):
        p = Partition.from_labels([0, 1, 2, 0, 1, 2])
        m = p.indicator_matrix()
        gram = m.T @ m
        assert np.allclose(gram, np.diag(np.diag(gram)))

    def test_equality_under_relabelling(self):
        assert Partition.from_labels([0, 0, 1]) == Partition.from_labels([7, 7, 3])
        assert Partition.from_labels([0, 0, 1]) != Partition.from_labels([0, 1, 1])


class TestMisclassification:
    def test_identical_partitions(self):
        p = Partition.from_labels([0, 1, 0, 2, 2])
        assert misclassified_nodes(p, p) == 0
        assert misclassification_rate(p, p) == 0.0

    def test_permuted_labels_count_as_correct(self):
        truth = Partition.from_labels([0, 0, 1, 1])
        predicted = Partition.from_labels([1, 1, 0, 0])
        assert misclassified_nodes(predicted, truth) == 0

    def test_single_error(self):
        truth = Partition.from_labels([0, 0, 0, 1, 1, 1])
        predicted = Partition.from_labels([0, 0, 1, 1, 1, 1])
        assert misclassified_nodes(predicted, truth) == 1

    def test_all_in_one_cluster(self):
        truth = Partition.from_labels([0, 0, 1, 1])
        predicted = Partition.trivial(4)
        assert misclassified_nodes(predicted, truth) == 2

    def test_different_cluster_counts(self):
        truth = Partition.from_labels([0, 0, 0, 1, 1, 1])
        predicted = Partition.from_labels([0, 0, 1, 2, 2, 2])
        # optimal: map 0->0 (2 correct), 2->1 (3 correct); node 2 misclassified
        assert misclassified_nodes(predicted, truth) == 1

    def test_rate_bounds(self):
        truth = Partition.from_labels([0, 1, 2, 3])
        predicted = Partition.from_labels([3, 2, 1, 0])
        rate = misclassification_rate(predicted, truth)
        assert 0.0 <= rate <= 1.0

    def test_mismatched_sizes_raise(self):
        with pytest.raises(PartitionError):
            misclassified_nodes(Partition.trivial(3), Partition.trivial(4))


class TestConfusionAndPermutation:
    def test_confusion_matrix_totals(self):
        truth = Partition.from_labels([0, 0, 1, 1, 1])
        predicted = Partition.from_labels([0, 1, 1, 1, 1])
        m = confusion_matrix(predicted, truth)
        assert m.sum() == 5
        assert m.shape == (2, 2)
        assert m[0, 0] == 1 and m[1, 1] == 3 and m[1, 0] == 1

    def test_best_label_permutation_is_injective(self):
        truth = Partition.from_labels([0, 0, 1, 1, 2, 2])
        predicted = Partition.from_labels([2, 2, 0, 0, 1, 1])
        mapping = best_label_permutation(predicted, truth)
        values = [v for v in mapping.values() if v >= 0]
        assert len(values) == len(set(values))
        # Labels are normalised by first appearance, so the normalised
        # predicted labels align exactly with the truth labels here.
        assert mapping == {0: 0, 1: 1, 2: 2}
        assert misclassified_nodes(predicted, truth) == 0

    def test_unmatched_predicted_labels_map_to_minus_one(self):
        truth = Partition.from_labels([0, 0, 0, 0])
        predicted = Partition.from_labels([0, 1, 2, 3])
        mapping = best_label_permutation(predicted, truth)
        assert sorted(mapping.values()).count(-1) == 3
