"""Unit tests for the Walker alias tables behind the LFR endpoint draws."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import AliasTable, SegmentedAliasTable


class TestAliasTable:
    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty 1-d"):
            AliasTable(np.empty(0))
        with pytest.raises(ValueError, match="non-empty 1-d"):
            AliasTable(np.ones((2, 2)))
        with pytest.raises(ValueError, match="finite"):
            AliasTable(np.array([1.0, np.nan]))
        with pytest.raises(ValueError, match="finite"):
            AliasTable(np.array([1.0, -0.5]))
        with pytest.raises(ValueError, match="positive sum"):
            AliasTable(np.zeros(4))

    def test_build_is_deterministic_and_consumes_no_randomness(self):
        w = np.array([0.1, 3.0, 0.0, 1.5, 2.4])
        a = AliasTable(w)
        b = AliasTable(w)
        assert np.array_equal(a.prob, b.prob)
        assert np.array_equal(a.alias, b.alias)

    def test_draw_is_seed_deterministic(self):
        table = AliasTable(np.array([1.0, 2.0, 3.0]))
        x = table.draw(np.random.default_rng(7), 100)
        y = table.draw(np.random.default_rng(7), 100)
        assert np.array_equal(x, y)

    def test_draw_spends_two_stream_values_per_sample(self):
        # One uniform integer + one uniform float per sample: callers embed
        # the table in larger seeded pipelines and rely on a fixed budget.
        table = AliasTable(np.array([1.0, 2.0, 3.0]))
        rng_a = np.random.default_rng(3)
        table.draw(rng_a, 10)
        rng_b = np.random.default_rng(3)
        rng_b.integers(0, 3, size=10)
        rng_b.random(10)
        assert rng_a.integers(0, 1 << 62) == rng_b.integers(0, 1 << 62)

    def test_frequencies_match_weights(self):
        w = np.array([5.0, 1.0, 0.0, 3.0, 1.0])
        table = AliasTable(w)
        draws = table.draw(np.random.default_rng(0), 200_000)
        freq = np.bincount(draws, minlength=w.size) / draws.size
        assert np.allclose(freq, w / w.sum(), atol=0.01)

    def test_zero_weights_never_drawn(self):
        w = np.array([0.0, 1.0, 0.0, 2.0, 0.0])
        draws = AliasTable(w).draw(np.random.default_rng(1), 50_000)
        assert set(np.unique(draws)) <= {1, 3}

    def test_single_entry(self):
        draws = AliasTable(np.array([2.5])).draw(np.random.default_rng(0), 64)
        assert np.all(draws == 0)


class TestSegmentedAliasTable:
    def test_validation(self):
        w = np.ones(6)
        with pytest.raises(ValueError, match="segment"):
            SegmentedAliasTable(w, np.array([0]))
        with pytest.raises(ValueError, match="ascend"):
            SegmentedAliasTable(w, np.array([0, 4, 2, 6]))
        with pytest.raises(ValueError, match="ascend"):
            SegmentedAliasTable(w, np.array([0, 3]))
        with pytest.raises(ValueError, match="ascend"):
            SegmentedAliasTable(w, np.array([1, 6]))
        with pytest.raises(ValueError, match="finite"):
            SegmentedAliasTable(np.array([1.0, np.inf]), np.array([0, 2]))

    def test_draws_stay_inside_their_segment(self):
        w = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0])
        starts = np.array([0, 3, 3, 7])  # middle segment empty
        table = SegmentedAliasTable(w, starts)
        rng = np.random.default_rng(2)
        segments = np.array([0] * 500 + [2] * 500)
        pos = table.draw_in_segments(segments, rng)
        assert np.all(pos[:500] < 3)
        assert np.all((3 <= pos[500:]) & (pos[500:] < 7))

    def test_empty_segment_draw_rejected(self):
        table = SegmentedAliasTable(np.ones(4), np.array([0, 2, 2, 4]))
        with pytest.raises(ValueError, match="empty segment"):
            table.draw_in_segments(np.array([1]), np.random.default_rng(0))

    def test_in_segment_frequencies_match_weights(self):
        w = np.array([1.0, 3.0, 4.0, 2.0, 2.0])
        starts = np.array([0, 2, 5])
        table = SegmentedAliasTable(w, starts)
        rng = np.random.default_rng(4)
        pos = table.draw_in_segments(np.full(150_000, 1), rng)
        freq = np.bincount(pos - 2, minlength=3) / pos.size
        assert np.allclose(freq, w[2:] / w[2:].sum(), atol=0.01)

    def test_matches_unsegmented_table_on_single_segment(self):
        w = np.array([0.5, 1.5, 3.0, 2.0])
        seg = SegmentedAliasTable(w, np.array([0, 4]))
        flat = AliasTable(w)
        assert np.array_equal(seg.prob, flat.prob)
        assert np.array_equal(seg.alias, flat.alias)

    def test_seed_deterministic(self):
        w = np.arange(1.0, 9.0)
        starts = np.array([0, 4, 8])
        table = SegmentedAliasTable(w, starts)
        segs = np.array([0, 1, 1, 0, 1])
        a = table.draw_in_segments(segs, np.random.default_rng(9))
        b = table.draw_in_segments(segs, np.random.default_rng(9))
        assert np.array_equal(a, b)


class TestMergeSortedUnique:
    def _check(self, have, new):
        from repro.graphs.sampling import _sorted_unique, merge_sorted_unique

        have = np.asarray(have, dtype=np.int64)
        new = np.asarray(new, dtype=np.int64)
        out = merge_sorted_unique(have, new)
        expected = _sorted_unique(np.concatenate([have, new]))
        assert np.array_equal(out, expected)
        return out

    def test_disjoint(self):
        self._check([1, 5, 9], [2, 4, 10])

    def test_overlapping_and_internal_duplicates(self):
        self._check([1, 5, 9], [5, 5, 1, 9, 3, 3])

    def test_empty_sides(self):
        from repro.graphs.sampling import merge_sorted_unique

        have = np.array([2, 4], dtype=np.int64)
        assert merge_sorted_unique(have, np.empty(0, dtype=np.int64)) is have
        out = self._check([], [3, 1, 3])
        assert out.tolist() == [1, 3]

    def test_all_duplicates_returns_have(self):
        from repro.graphs.sampling import merge_sorted_unique

        have = np.array([1, 2, 3], dtype=np.int64)
        assert merge_sorted_unique(have, np.array([2, 1, 3, 2])) is have

    def test_randomised_against_reference(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            have = np.unique(rng.integers(0, 200, size=rng.integers(0, 40)))
            new = rng.integers(0, 200, size=rng.integers(0, 40))
            self._check(have, new)

    def test_interleaving_extremes(self):
        self._check([10, 20, 30], [1, 2, 3])       # all before
        self._check([10, 20, 30], [40, 50])        # all after
        self._check([10, 30], [20, 20, 25])        # all between
