"""Dense-vs-streaming parity for the matrix-free spectral pipeline.

The operator layer promises that the streamed adjacency product
(`CSRStorage.matvec` → `Graph.adjacency_operator`) is *bit-identical*
across storage backends and block sizes, matches the materialised scipy
matrices to rounding, and that the Lanczos path built on it is seeded and
deterministic.  Each promise is pinned here, together with the regression
tests for the three bugs this layer fixed (global-RNG start vectors, the
dense-spectrum blowup in ``lazy_mixing_time_bound``, the ``np.matrix``
round trip in ``expected_matching_matrix``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    CSRStorageError,
    Graph,
    MmapStorage,
    cycle_of_cliques,
    lanczos_start_vector,
    lazy_mixing_time_bound,
    planted_partition,
    random_walk_eigenvalues,
    spectral_decomposition,
    symmetric_walk_matrix,
)
from repro.graphs import spectral as spectral_module


@pytest.fixture(scope="module")
def awkward_graph() -> Graph:
    """Self-loops, an isolated node, degree-0 rows at both block edges."""
    edges = [
        (0, 1), (1, 2), (2, 2),      # a path with a self-loop
        (4, 5), (5, 6), (6, 4),      # a triangle (node 3 stays isolated)
        (7, 8), (8, 8),              # a pendant edge plus a self-loop
    ]
    return Graph(9, edges, name="awkward")


@pytest.fixture(scope="module")
def clustered_graph() -> Graph:
    inst = planted_partition(240, 3, 0.3, 0.02, seed=11, ensure_connected=True)
    return inst.graph


def _mmap_twin(graph: Graph, tmp_path, shard_arcs: int) -> Graph:
    indptr, indices = graph.csr_arrays()
    directory = tmp_path / f"twin-{shard_arcs}.csr"
    MmapStorage.write(directory, np.asarray(indptr), np.asarray(indices), shard_arcs=shard_arcs)
    return Graph.from_storage(MmapStorage(directory), name=graph.name)


class TestStorageMatvec:
    @pytest.mark.parametrize("block_size", [None, 1, 2, 3, 64, 10_000])
    def test_matches_scipy_matrix(self, awkward_graph, block_size):
        x = np.random.default_rng(0).standard_normal(awkward_graph.n)
        ref = awkward_graph.adjacency_matrix(sparse=True) @ x
        got = awkward_graph.storage.matvec(x, block_size=block_size)
        assert np.allclose(got, ref, atol=1e-12)

    def test_bit_identical_across_block_sizes(self, clustered_graph):
        x = np.random.default_rng(1).standard_normal(clustered_graph.n)
        reference = clustered_graph.storage.matvec(x)
        for block_size in (1, 7, 50, 239, 10_000):
            assert np.array_equal(
                clustered_graph.storage.matvec(x, block_size=block_size), reference
            )

    @pytest.mark.parametrize("shard_arcs", [1, 5, 400, 10**9])
    def test_bit_identical_across_backends(self, awkward_graph, tmp_path, shard_arcs):
        # shard_arcs=1 puts every row in its own shard; 10^9 yields a single
        # shard — both must reproduce the dense floats exactly.
        twin = _mmap_twin(awkward_graph, tmp_path, shard_arcs)
        x = np.random.default_rng(2).standard_normal(awkward_graph.n)
        assert np.array_equal(
            twin.storage.matvec(x), awkward_graph.storage.matvec(x)
        )

    def test_matrix_operand(self, awkward_graph):
        x = np.random.default_rng(3).standard_normal((awkward_graph.n, 4))
        ref = awkward_graph.adjacency_matrix(sparse=True) @ x
        assert np.allclose(awkward_graph.storage.matvec(x), ref, atol=1e-12)

    def test_isolated_node_row_is_zero(self, awkward_graph):
        y = awkward_graph.storage.matvec(np.ones(awkward_graph.n))
        assert y[3] == 0.0

    def test_rejects_wrong_shape(self, awkward_graph):
        with pytest.raises(CSRStorageError):
            awkward_graph.storage.matvec(np.ones(awkward_graph.n + 1))
        with pytest.raises(CSRStorageError):
            awkward_graph.storage.matvec(np.ones((awkward_graph.n, 2, 2)))


class TestGraphOperators:
    def test_adjacency_operator_matvec_and_matmat(self, clustered_graph):
        rng = np.random.default_rng(4)
        a = clustered_graph.adjacency_matrix(sparse=True)
        op = clustered_graph.adjacency_operator()
        x = rng.standard_normal(clustered_graph.n)
        xs = rng.standard_normal((clustered_graph.n, 3))
        assert np.allclose(op @ x, a @ x, atol=1e-12)
        assert np.allclose(np.asarray(op @ xs), a @ xs, atol=1e-12)
        # symmetric structure: rmatvec is the same product
        assert np.allclose(op.rmatvec(x), a.T @ x, atol=1e-12)

    def test_normalized_operator_matches_materialised(self, awkward_graph):
        sym = symmetric_walk_matrix(awkward_graph)
        op = awkward_graph.normalized_adjacency_operator()
        x = np.random.default_rng(5).standard_normal(awkward_graph.n)
        assert np.allclose(op @ x, sym @ x, atol=1e-12)

    def test_operator_on_mmap_graph(self, clustered_graph, tmp_path):
        twin = _mmap_twin(clustered_graph, tmp_path, shard_arcs=300)
        x = np.random.default_rng(6).standard_normal(clustered_graph.n)
        assert np.array_equal(
            twin.normalized_adjacency_operator() @ x,
            clustered_graph.normalized_adjacency_operator() @ x,
        )


class TestStreamedEigensolve:
    def test_streamed_matches_dense_eigenvalues(self, clustered_graph):
        streamed = spectral_decomposition(clustered_graph, num=5, dense=False)
        materialised = spectral_decomposition(clustered_graph, num=5, dense=True)
        assert np.allclose(
            streamed.eigenvalues, materialised.eigenvalues, rtol=1e-8, atol=1e-10
        )

    def test_streamed_identical_for_mmap_backend(self, clustered_graph, tmp_path):
        twin = _mmap_twin(clustered_graph, tmp_path, shard_arcs=128)
        dense_backed = spectral_decomposition(clustered_graph, num=4, dense=False)
        mmap_backed = spectral_decomposition(twin, num=4, dense=False)
        assert np.array_equal(dense_backed.eigenvalues, mmap_backed.eigenvalues)

    def test_repeat_calls_bit_identical(self, clustered_graph):
        # Regression: eigsh used to draw its start vector from numpy's
        # global RNG, so repeated large-graph eigensolves disagreed.
        first = spectral_decomposition(clustered_graph, num=3, dense=False)
        second = spectral_decomposition(clustered_graph, num=3, dense=False)
        assert np.array_equal(first.eigenvalues, second.eigenvalues)
        assert np.array_equal(first.eigenvectors, second.eigenvectors)

    def test_repeat_calls_bit_identical_above_dense_limit(self):
        big = cycle_of_cliques(4, 401, seed=0).graph  # n = 1604 > _DENSE_LIMIT
        assert big.n > spectral_module._DENSE_LIMIT
        first = random_walk_eigenvalues(big, num=5)
        second = random_walk_eigenvalues(big, num=5)
        assert np.array_equal(first, second)

    def test_global_rng_untouched(self, clustered_graph):
        # Regression: the v0-less eigsh *consumed* global-RNG state, which
        # perturbed unrelated seeded code sharing np.random.
        np.random.seed(1234)
        before = np.random.get_state()[1].copy()
        spectral_decomposition(clustered_graph, num=3, dense=False)
        assert np.array_equal(before, np.random.get_state()[1])

    def test_start_vector_deterministic_and_normalised(self):
        v = lanczos_start_vector(1000)
        assert np.array_equal(v, lanczos_start_vector(1000))
        assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_full_spectrum_raises_above_dense_limit(self):
        big = cycle_of_cliques(4, 401, seed=0).graph
        with pytest.raises(ValueError, match="dense"):
            spectral_decomposition(big)
        with pytest.raises(ValueError, match="dense"):
            spectral_decomposition(big, num=big.n - 1)

    def test_lanczos_requires_num(self, clustered_graph):
        with pytest.raises(ValueError, match="num"):
            spectral_decomposition(clustered_graph, dense=False)

    def test_lanczos_caps_at_n_minus_2(self, clustered_graph):
        # Forced streaming cannot satisfy num >= n - 1 (ARPACK needs
        # k < n - 1); it must raise, not silently return fewer eigenpairs.
        with pytest.raises(ValueError, match="at most"):
            spectral_decomposition(
                clustered_graph, num=clustered_graph.n - 1, dense=False
            )


class TestMixingBoundRegression:
    def test_no_densification_above_dense_limit(self, monkeypatch):
        # Regression: lazy_mixing_time_bound requested the FULL spectrum
        # (num=None), which routed through the dense n x n branch at any
        # size.  Poisoning the dense machinery proves the bound now stays
        # on the matrix-free path end to end.
        big = cycle_of_cliques(4, 401, seed=0).graph  # n = 1604 > _DENSE_LIMIT

        def _boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("dense spectral path must not run")

        monkeypatch.setattr(spectral_module, "symmetric_walk_matrix", _boom)
        monkeypatch.setattr(spectral_module.la, "eigh", _boom)
        bound = lazy_mixing_time_bound(big)
        assert np.isfinite(bound) and bound > 0.0

    def test_bound_value_unchanged(self, four_clique_instance):
        # num=2 must give the same bound the full-spectrum call produced.
        g = four_clique_instance.graph
        vals = random_walk_eigenvalues(g)  # small graph: full dense spectrum
        expected = float(np.log(g.n / 0.25) / (1.0 - (1.0 + vals[1]) / 2.0))
        assert lazy_mixing_time_bound(g) == pytest.approx(expected)
