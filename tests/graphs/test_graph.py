"""Unit tests for the CSR graph data structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import Graph, GraphError, complete_graph, cycle_graph, grid_graph


class TestConstruction:
    def test_basic_construction(self, small_graph):
        assert small_graph.n == 4
        assert small_graph.num_edges == 5
        assert small_graph.volume == 10

    def test_degrees(self, small_graph):
        # house graph: 0-1, 1-2, 2-3, 3-0, 0-2
        assert small_graph.degree(0) == 3
        assert small_graph.degree(1) == 2
        assert small_graph.degree(2) == 3
        assert small_graph.degree(3) == 2
        assert small_graph.max_degree == 3
        assert small_graph.min_degree == 2

    def test_empty_edge_list(self):
        g = Graph(3, [])
        assert g.num_edges == 0
        assert g.volume == 0
        assert g.min_degree == 0

    def test_rejects_nonpositive_n(self):
        with pytest.raises(GraphError):
            Graph(0, [])

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, 3)])
        with pytest.raises(GraphError):
            Graph(3, [(-1, 1)])

    def test_rejects_duplicate_edges(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, 1), (1, 0)])
        with pytest.raises(GraphError):
            Graph(3, [(0, 1), (0, 1)])

    def test_rejects_malformed_edges(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, 1, 2)])  # type: ignore[list-item]

    def test_self_loop_counted_once(self):
        g = Graph(2, [(0, 1), (1, 1)])
        assert g.num_edges == 2
        assert g.num_self_loops == 1
        assert g.degree(1) == 2
        assert g.has_edge(1, 1)

    def test_rejects_duplicate_self_loop(self):
        with pytest.raises(GraphError):
            Graph(2, [(1, 1), (1, 1)])

    def test_from_adjacency_dense(self):
        a = np.array([[0, 1, 1], [1, 0, 0], [1, 0, 0]])
        g = Graph.from_adjacency(a)
        assert g.num_edges == 2
        assert g.has_edge(0, 1) and g.has_edge(0, 2) and not g.has_edge(1, 2)

    def test_from_adjacency_rejects_asymmetric(self):
        a = np.array([[0, 1], [0, 0]])
        with pytest.raises(GraphError):
            Graph.from_adjacency(a)

    def test_from_networkx_roundtrip(self, small_graph):
        nx_graph = small_graph.to_networkx()
        back = Graph.from_networkx(nx_graph)
        assert back == small_graph


class TestArrayConstruction:
    def test_from_edge_array_matches_init(self, small_graph):
        arr = small_graph.edge_array()
        rebuilt = Graph.from_edge_array(small_graph.n, arr, name=small_graph.name)
        assert rebuilt == small_graph

    def test_from_edge_array_validates_range(self):
        with pytest.raises(GraphError):
            Graph.from_edge_array(3, np.array([[0, 3]]))
        with pytest.raises(GraphError):
            Graph.from_edge_array(3, np.array([[-1, 1]]))

    def test_from_edge_array_validates_duplicates(self):
        with pytest.raises(GraphError):
            Graph.from_edge_array(3, np.array([[0, 1], [1, 0]]))
        with pytest.raises(GraphError):
            Graph.from_edge_array(3, np.array([[1, 1], [1, 1]]))

    def test_from_edge_array_empty(self):
        g = Graph.from_edge_array(4, np.empty((0, 2), dtype=np.int64))
        assert g.num_edges == 0 and g.n == 4

    def test_from_csr_roundtrip(self, small_graph):
        indptr, indices = small_graph.csr_arrays()
        rebuilt = Graph.from_csr(indptr, indices, name=small_graph.name)
        assert rebuilt == small_graph
        assert rebuilt.num_edges == small_graph.num_edges
        assert rebuilt.num_self_loops == small_graph.num_self_loops
        assert np.array_equal(rebuilt.degrees, small_graph.degrees)

    def test_from_csr_is_zero_copy(self):
        g = Graph(3, [(0, 1), (1, 2)])
        indptr = g.csr_arrays()[0].copy()
        indices = g.csr_arrays()[1].copy()
        adopted = Graph.from_csr(indptr, indices)
        assert adopted.csr_arrays()[0].base is indptr or adopted.csr_arrays()[0] is indptr
        assert adopted.csr_arrays()[1].base is indices or adopted.csr_arrays()[1] is indices

    def test_from_csr_counts_self_loops(self):
        g = Graph(3, [(0, 1), (1, 1), (2, 2)])
        rebuilt = Graph.from_csr(*g.csr_arrays())
        assert rebuilt.num_self_loops == 2
        assert rebuilt.num_edges == 3

    def test_from_csr_rejects_inconsistent_indptr(self):
        with pytest.raises(GraphError):
            Graph.from_csr(np.array([0, 1]), np.empty(0, dtype=np.int64))

    def test_from_csr_validate_rejects_asymmetric(self):
        # arc 0 -> 1 without its reverse
        with pytest.raises(GraphError):
            Graph.from_csr(np.array([0, 1, 1]), np.array([1]), validate=True)

    def test_from_csr_validate_accepts_valid(self, small_graph):
        rebuilt = Graph.from_csr(*small_graph.csr_arrays(), validate=True)
        assert rebuilt == small_graph


class TestNeighbourhoods:
    def test_neighbours_sorted_and_readonly(self, small_graph):
        neigh = small_graph.neighbours(0)
        assert list(neigh) == [1, 2, 3]
        with pytest.raises(ValueError):
            neigh[0] = 5

    def test_random_neighbour_distribution(self, small_graph, rng):
        counts = {1: 0, 2: 0, 3: 0}
        for _ in range(3000):
            counts[small_graph.random_neighbour(0, rng)] += 1
        for v, c in counts.items():
            assert abs(c / 3000 - 1 / 3) < 0.05, f"neighbour {v} sampled with frequency {c/3000}"

    def test_random_neighbour_isolated_node_raises(self):
        g = Graph(2, [])
        with pytest.raises(GraphError):
            g.random_neighbour(0, np.random.default_rng(0))

    def test_has_edge(self, small_graph):
        assert small_graph.has_edge(0, 2)
        assert small_graph.has_edge(2, 0)
        assert not small_graph.has_edge(1, 3)

    def test_has_edge_high_degree_hits_and_misses(self):
        # Node 0 is adjacent to every odd node: exercises the binary search
        # over a long sorted neighbour slice on both hit and miss paths.
        n = 2001
        odds = np.arange(1, n, 2, dtype=np.int64)
        edges = np.stack([np.zeros(odds.size, dtype=np.int64), odds], axis=1)
        g = Graph.from_edge_array(n, edges)
        assert g.degree(0) == odds.size
        for v in (1, 999, 1999):  # first, middle, last neighbour
            assert g.has_edge(0, v) and g.has_edge(v, 0)
        for v in (0, 2, 1000, 2000):  # self, interior misses, past-the-end
            assert not g.has_edge(0, v)
        assert not g.has_edge(1, 3)

    def test_edges_iteration_unique(self, small_graph):
        edges = list(small_graph.edges())
        assert len(edges) == small_graph.num_edges
        assert len(set(edges)) == len(edges)
        assert all(u <= v for u, v in edges)

    def test_edge_array_matches_edges(self, small_graph):
        arr = small_graph.edge_array()
        assert sorted(map(tuple, arr.tolist())) == sorted(small_graph.edges())


class TestMatrices:
    def test_adjacency_matrix_symmetric(self, small_graph):
        a = small_graph.adjacency_matrix(sparse=False)
        assert np.array_equal(a, a.T)
        assert a.sum() == 2 * small_graph.num_edges

    def test_random_walk_matrix_row_stochastic(self, small_graph):
        p = small_graph.random_walk_matrix(sparse=False)
        assert np.allclose(p.sum(axis=1), 1.0)
        assert np.all(p >= 0)

    def test_random_walk_matrix_regular_graph_symmetric(self):
        g = complete_graph(5)
        p = g.random_walk_matrix(sparse=False)
        assert np.allclose(p, p.T)
        assert np.allclose(np.diag(p), 0.0)

    def test_lazy_random_walk_diagonal(self, small_graph):
        lazy = small_graph.lazy_random_walk_matrix(sparse=False)
        assert np.allclose(np.diag(lazy), 0.5)
        assert np.allclose(lazy.sum(axis=1), 1.0)

    def test_normalized_laplacian_psd(self, small_graph):
        lap = small_graph.normalized_laplacian(sparse=False)
        eigenvalues = np.linalg.eigvalsh(lap)
        assert eigenvalues.min() >= -1e-10
        assert eigenvalues.max() <= 2.0 + 1e-10


class TestTransformations:
    def test_induced_subgraph(self, small_graph):
        sub = small_graph.induced_subgraph([0, 1, 2])
        assert sub.n == 3
        assert sub.num_edges == 3  # triangle 0-1-2 (edges 0-1, 1-2, 0-2)

    def test_induced_subgraph_relabels(self, small_graph):
        sub = small_graph.induced_subgraph([2, 3])
        assert sub.n == 2
        assert sub.has_edge(0, 1)

    def test_with_self_loops_to_degree(self, small_graph):
        capped = small_graph.with_self_loops_to_degree(3)
        # nodes 1 and 3 have degree 2 and get a self-loop
        assert capped.num_self_loops == 2
        assert capped.degree(1) == 3
        assert capped.degree(0) == 3  # unchanged

    def test_with_self_loops_rejects_small_target(self, small_graph):
        with pytest.raises(GraphError):
            small_graph.with_self_loops_to_degree(2)


class TestConnectivity:
    def test_connected(self, small_graph):
        assert small_graph.is_connected()

    def test_disconnected_components(self):
        g = Graph(5, [(0, 1), (2, 3)])
        components = g.connected_components()
        assert len(components) == 3
        sizes = sorted(len(c) for c in components)
        assert sizes == [1, 2, 2]

    def test_grid_is_connected(self):
        assert grid_graph(3, 4).is_connected()


class TestEqualityAndRegularity:
    def test_equality_is_edge_order_invariant(self):
        g1 = Graph(3, [(0, 1), (1, 2)])
        g2 = Graph(3, [(1, 2), (0, 1)])
        assert g1 == g2
        assert hash(g1) == hash(g2)

    def test_inequality(self):
        assert Graph(3, [(0, 1)]) != Graph(3, [(0, 2)])

    def test_regularity(self):
        assert cycle_graph(6).is_regular()
        assert complete_graph(4).is_regular()
        assert not grid_graph(2, 3).is_regular()

    def test_degree_ratio(self):
        assert cycle_graph(5).degree_ratio() == 1.0
        assert Graph(3, []).degree_ratio() == float("inf")

    def test_len(self, small_graph):
        assert len(small_graph) == 4
