"""Tests for the streamed union-find connectivity path.

``connected_components``/``is_connected`` run a path-halving union-find over
``storage.iter_row_blocks`` instead of scipy's csgraph, so they must agree
with scipy on every backend (dense and memory-mapped, any shard geometry)
while never touching the materialising ``_csgraph`` helper.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse.csgraph as csgraph

from repro.graphs import Graph, MmapStorage, planted_partition
from repro.graphs.graph import _find_roots, _union_edge_batch


def _mmap_graph(tmp_path, graph: Graph, shard_arcs: int) -> Graph:
    indptr, indices = graph.csr_arrays()
    directory = tmp_path / f"entry-{shard_arcs}.csr"
    MmapStorage.write(directory, np.asarray(indptr), np.asarray(indices), shard_arcs=shard_arcs)
    return Graph.from_storage(MmapStorage(directory), name=graph.name)


def _assert_matches_scipy(graph: Graph) -> None:
    ours = graph.connected_components()
    n_comp, labels = csgraph.connected_components(graph._csgraph(), directed=False)
    assert len(ours) == n_comp
    # scipy labels components in first-appearance order = order of smallest
    # member, the same order ours uses; compare membership exactly.
    for c, nodes in enumerate(ours):
        assert np.array_equal(np.sort(nodes), np.flatnonzero(labels == c))
    assert graph.is_connected() == (n_comp == 1)


@pytest.fixture(scope="module")
def clustered():
    return planted_partition(120, 3, 0.3, 0.02, seed=5, ensure_connected=True).graph


class TestUnionFindPrimitives:
    def test_find_roots_compresses(self):
        parent = np.array([0, 0, 1, 2, 3], dtype=np.int64)  # chain 4->3->2->1->0
        roots = _find_roots(parent, np.array([4]))
        assert roots[0] == 0
        # path halving re-pointed nodes at grandparents
        assert parent[4] < 3

    def test_union_batch_with_conflicts(self):
        # Many edges sharing endpoints in one batch: scatter conflicts must
        # retry, never drop a union.
        parent = np.arange(10, dtype=np.int64)
        u = np.zeros(9, dtype=np.int64)
        v = np.arange(1, 10, dtype=np.int64)
        _union_edge_batch(parent, u, v)
        assert np.array_equal(_find_roots(parent, np.arange(10)), np.zeros(10, dtype=np.int64))


class TestConnectedComponents:
    def test_matches_scipy_dense(self, clustered):
        _assert_matches_scipy(clustered)

    @pytest.mark.parametrize("shard_arcs", [7, 64, 10_000])
    def test_matches_scipy_mmap(self, tmp_path, clustered, shard_arcs):
        _assert_matches_scipy(_mmap_graph(tmp_path, clustered, shard_arcs))

    def test_one_row_per_shard(self, tmp_path):
        # shard_arcs=1 forces a cut after every non-empty row: unions arrive
        # one row at a time and cross shard boundaries constantly.
        g = Graph(6, [(0, 1), (1, 2), (3, 4)])
        mm = _mmap_graph(tmp_path, g, shard_arcs=1)
        assert mm.storage.num_shards >= 3
        _assert_matches_scipy(mm)

    def test_isolated_nodes(self, tmp_path):
        g = Graph(7, [(1, 2), (4, 5)])  # nodes 0, 3, 6 isolated
        comps = g.connected_components()
        assert [c.tolist() for c in comps] == [[0], [1, 2], [3], [4, 5], [6]]
        assert not g.is_connected()
        _assert_matches_scipy(g)
        _assert_matches_scipy(_mmap_graph(tmp_path, g, shard_arcs=2))

    def test_singleton_components_and_self_loops(self):
        # A self-loop keeps a node in its own singleton component.
        g = Graph(4, [(0, 0), (2, 3)])
        comps = g.connected_components()
        assert [c.tolist() for c in comps] == [[0], [1], [2, 3]]

    def test_fully_disconnected(self, tmp_path):
        g = Graph(5, [])
        assert [c.tolist() for c in g.connected_components()] == [[i] for i in range(5)]
        assert not g.is_connected()
        mm = _mmap_graph(tmp_path, g, shard_arcs=4)
        assert [c.tolist() for c in mm.connected_components()] == [[i] for i in range(5)]

    def test_all_one_component(self, tmp_path):
        n = 50
        g = Graph(n, [(i, i + 1) for i in range(n - 1)])
        assert g.is_connected()
        assert len(g.connected_components()) == 1
        mm = _mmap_graph(tmp_path, g, shard_arcs=5)
        assert mm.is_connected()

    def test_single_node(self):
        g = Graph(1, [])
        assert g.is_connected()
        assert [c.tolist() for c in g.connected_components()] == [[0]]

    def test_components_ordered_by_smallest_member(self):
        g = Graph(6, [(4, 5), (0, 3), (1, 2)])
        firsts = [int(c[0]) for c in g.connected_components()]
        assert firsts == sorted(firsts)


class TestNoMaterialisation:
    def test_connectivity_never_builds_csgraph(self, tmp_path, clustered, monkeypatch):
        # Poison the scipy-matrix helper AND the materialising accessor:
        # the streamed path must touch neither, on either backend.
        mm = _mmap_graph(tmp_path, clustered, shard_arcs=64)

        def _boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("connectivity must not materialise the adjacency")

        for g in (clustered, mm):
            monkeypatch.setattr(Graph, "_csgraph", _boom)
            monkeypatch.setattr(type(g.storage), "indices_array", _boom)
            assert g.is_connected()
            assert len(g.connected_components()) == 1
            monkeypatch.undo()
