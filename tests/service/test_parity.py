"""Executor parity: queue == process == serial, bit for bit.

The transport-agnostic contract of the trial fabric is that *where* a
task runs never changes *what* it records: every trial's randomness comes
from :func:`trial_seed` of its own (algorithm, trial, base_seed)
coordinates, so any executor that honours the canonical grid order must
reproduce the serial loop exactly — including value types, which is why
the comparisons below use ``==`` on the raw record tuples rather than
approximate matchers.
"""

from __future__ import annotations

import pytest

from repro.distsim import make_failure_model
from repro.evaluation import (
    QueueExecutor,
    SerialExecutor,
    TrialTask,
    evaluate_baseline,
    evaluate_distributed_clustering,
    evaluate_load_balancing_clustering,
    run_trials,
    sweep,
    trial_seed,
)
from repro.evaluation.runner import TrialRecord
from repro.baselines import SpectralClustering
from repro.graphs import cached_instance, cycle_of_cliques


def _instances():
    return list(sweep([2, 3], lambda k: cycle_of_cliques(k, 12, seed=k), key="k"))


def _mmap_instances(tmp_path):
    def make(size, cache_dir=None):
        return cached_instance(
            cycle_of_cliques, k=2, clique_size=size, seed=size,
            cache_dir=cache_dir, mmap=True,
        )

    return list(sweep([8, 10], make, key="size", cache_dir=str(tmp_path)))


def _algorithms(failures=None):
    # Failure injection needs a round-engine backend (the legacy centralized
    # driver has no message layer to fail), so "ours" pins vectorized.
    ours = evaluate_load_balancing_clustering(
        backend="vectorized", failures=failures
    )
    return {
        "ours": ours,
        "vectorized": evaluate_distributed_clustering(rounds=20),
        "spectral": evaluate_baseline(SpectralClustering()),
    }


def _flat(result):
    return [(r.config, r.trial, r.values) for r in result.records]


class TestExecutorParity:
    def test_queue_matches_serial_and_process_dense(self):
        instances = _instances()
        algorithms = _algorithms()
        serial = run_trials(instances, algorithms, trials=2, executor="serial")
        process = run_trials(
            instances, algorithms, trials=2, executor="process", workers=2
        )
        queue = run_trials(
            instances, algorithms, trials=2, executor="queue", workers=2
        )
        assert _flat(queue) == _flat(serial)
        assert _flat(process) == _flat(serial)

    def test_queue_matches_serial_on_mmap_instances(self, tmp_path):
        instances = _mmap_instances(tmp_path / "cache")
        algorithms = _algorithms()
        serial = run_trials(instances, algorithms, trials=2, executor="serial")
        queue = run_trials(instances, algorithms, trials=2, executor="queue", workers=2)
        assert _flat(queue) == _flat(serial)

    def test_parity_holds_under_failure_injection(self):
        """Failure masks are seeded from the trial seed, not executor state."""
        instances = _instances()
        algorithms = _algorithms(
            failures=make_failure_model(drop_probability=0.05)
        )
        serial = run_trials(instances, algorithms, trials=2, executor="serial")
        queue = run_trials(instances, algorithms, trials=2, executor="queue", workers=2)
        process = run_trials(
            instances, algorithms, trials=2, executor="process", workers=2
        )
        assert _flat(queue) == _flat(serial)
        assert _flat(process) == _flat(serial)

    def test_explicit_executor_instances(self):
        instances = _instances()
        algorithms = {"ours": evaluate_load_balancing_clustering()}
        serial = run_trials(instances, algorithms, executor=SerialExecutor())
        queue = run_trials(instances, algorithms, executor=QueueExecutor(workers=2))
        assert _flat(queue) == _flat(serial)

    def test_queue_executor_with_explicit_store_path(self, tmp_path):
        instances = _instances()
        algorithms = {"ours": evaluate_load_balancing_clustering()}
        db = tmp_path / "jobs.sqlite"
        queue = run_trials(
            instances, algorithms, executor=QueueExecutor(store=db, workers=2)
        )
        serial = run_trials(instances, algorithms, executor="serial")
        assert _flat(queue) == _flat(serial)
        assert db.exists()


class TestExecutorValidation:
    def test_executor_instance_plus_workers_rejected(self):
        with pytest.raises(ValueError, match="either an executor instance or workers"):
            run_trials(
                _instances(),
                {"ours": evaluate_load_balancing_clustering()},
                executor=SerialExecutor(),
                workers=2,
            )

    def test_queue_workers_zero_without_store_rejected(self):
        with pytest.raises(ValueError, match="external workers"):
            QueueExecutor(workers=0)

    def test_queue_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            QueueExecutor(workers=-1)

    def test_queue_string_selector(self):
        """run_trials(executor="queue") builds a QueueExecutor."""
        result = run_trials(
            _instances()[:1],
            {"ours": evaluate_load_balancing_clustering()},
            trials=1,
            executor="queue",
        )
        assert len(result.records) == 1


class TestTaskSerialisation:
    def test_trial_task_json_round_trip(self):
        task = TrialTask(
            index=1,
            algorithm="label-propagation",
            trial=2,
            base_seed=5,
            config={"size": 120, "algorithm": "label-propagation"},
            instance={"generator": "planted_partition", "params": {"n": 120}},
            options={"name": "label-propagation"},
        )
        assert TrialTask.from_json(task.to_json()) == task

    def test_minimal_task_omits_optional_fields(self):
        task = TrialTask(index=0, algorithm="ours", trial=0)
        text = task.to_json()
        assert "config" not in text and "instance" not in text
        assert TrialTask.from_json(text) == task

    def test_task_seed_is_trial_seed(self):
        task = TrialTask(index=0, algorithm="ours", trial=2, base_seed=5)
        assert task.seed == trial_seed("ours", 2, 5) == 2878

    def test_trial_record_json_round_trip(self):
        import numpy as np

        record = TrialRecord(
            config={"k": 2, "algorithm": "ours"},
            trial=1,
            values={"error": np.float64(0.125), "rounds": np.int64(20)},
        )
        restored = TrialRecord.from_json(record.to_json())
        assert restored.config == record.config
        assert restored.trial == 1
        # numpy scalars collapse to Python ones but keep their exact value
        assert restored.values == {"error": 0.125, "rounds": 20}
