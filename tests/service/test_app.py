"""REST layer: an ephemeral-port server exercised through ServiceClient."""

from __future__ import annotations

import threading

import pytest

from repro.service import JobStore, Worker, submit_sweep
from repro.service.app import ServiceApp, make_server
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import sweep_tasks

SPEC = {
    "family": "cliques",
    "sizes": [8],
    "k": 2,
    "algorithms": ["ours"],
    "trials": 1,
    "seed": 0,
    "keep_labels": True,
}


@pytest.fixture()
def service(tmp_path):
    """A live server on an ephemeral port plus its store and cache dir."""
    store = JobStore(tmp_path / "jobs.sqlite")
    cache = tmp_path / "cache"
    server = make_server(ServiceApp(store, cache_dir=cache))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}", timeout=10.0)
    try:
        yield client, store, cache
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)


class TestEndpoints:
    def test_health(self, service):
        client, _, _ = service
        assert client.health() == {"status": "ok"}

    def test_submit_drain_records_query(self, service):
        client, store, cache = service
        created = client.submit(SPEC)
        job = created["job"]
        assert created["state"] == "pending" and created["tasks"] == 1

        # No workers attached to this fixture — drain inline, then poll.
        Worker(store, cache_dir=cache).run_job(job)
        status = client.wait(job, timeout=10.0)
        assert status["state"] == "done"

        (record,) = client.records(job)
        assert record["trial"] == 0
        assert record["values"]["algorithm"] == "ours"
        assert "_labels" not in record["values"]

        jobs = client.jobs()
        assert [j["id"] for j in jobs] == [job]

        task = sweep_tasks(SPEC)[0]
        labels = client.query(task.instance["digest"], [0, 7, 15], seed=task.seed)
        assert len(labels) == 3
        assert all(isinstance(x, int) for x in labels)
        # A scalar node id works too and agrees with the batch form.
        assert client.query(task.instance["digest"], 0) == labels[:1]

    def test_wait_raises_on_failed_job(self, service):
        client, store, cache = service
        job = client.submit(SPEC)["job"]
        # Sabotage: fail the only task directly.
        store.claim_task("saboteur", job_id=job)
        store.fail_task(job, 0, "boom")
        with pytest.raises(ServiceError, match="failed"):
            client.wait(job, timeout=5.0)


class TestErrorMapping:
    def test_unknown_job_is_404(self, service):
        client, _, _ = service
        with pytest.raises(ServiceError, match="unknown job") as info:
            client.job(12345)
        assert info.value.status == 404

    def test_unknown_digest_is_404(self, service):
        client, _, _ = service
        with pytest.raises(ServiceError, match="no label store") as info:
            client.query("feedbeef00000000", [0])
        assert info.value.status == 404

    def test_bad_spec_is_400(self, service):
        client, _, _ = service
        with pytest.raises(ServiceError, match="unknown family") as info:
            client.submit({"family": "hypercubes", "sizes": [8]})
        assert info.value.status == 400

    def test_query_without_nodes_is_400(self, service):
        client, _, _ = service
        with pytest.raises(ServiceError, match="at least one node") as info:
            client._request("GET", "/labels/feedbeef00000000")
        assert info.value.status == 400

    def test_unknown_route_is_404(self, service):
        client, _, _ = service
        with pytest.raises(ServiceError, match="no route") as info:
            client._request("GET", "/nonsense")
        assert info.value.status == 404

    def test_query_without_cache_dir_is_rejected(self, tmp_path):
        app = ServiceApp(JobStore(tmp_path / "jobs.sqlite"), cache_dir=None)
        from repro.service.labels import LabelStoreError

        with pytest.raises(LabelStoreError, match="cache"):
            app.query("feedbeef00000000", [0])
