"""JobStore lifecycle, worker agents, and digest-addressed sweeps."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.evaluation import TrialTask
from repro.evaluation.runner import TrialRecord
from repro.graphs import instance_digest
from repro.service import (
    JobError,
    JobStore,
    Worker,
    make_algorithm,
    resolve_instance,
    submit_sweep,
    sweep_tasks,
)
from repro.service.labels import list_label_stores, query_labels


def _tasks(n=3, **kwargs):
    return [TrialTask(index=0, algorithm="ours", trial=t, **kwargs) for t in range(n)]


def _record(trial):
    return TrialRecord(config={"algorithm": "ours"}, trial=trial, values={"error": 0.0})


SWEEP_SPEC = {
    "family": "cliques",
    "sizes": [8, 10],
    "k": 2,
    "algorithms": ["ours"],
    "trials": 2,
    "seed": 0,
    "keep_labels": True,
}


class TestJobStoreLifecycle:
    def test_create_claim_complete(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite")
        job = store.create_job(spec={"kind": "test"}, tasks=_tasks(2))
        status = store.job_status(job)
        assert status["state"] == "pending"
        assert status["tasks"] == 2 and status["pending"] == 2

        claim = store.claim_task("w1")
        assert claim is not None
        job_id, idx, task = claim
        assert (job_id, idx) == (job, 0)
        assert task.algorithm == "ours" and task.trial == 0
        assert store.job_status(job)["state"] == "running"

        store.complete_task(job, 0, _record(0), worker="w1")
        _, idx2, _ = store.claim_task("w1")
        store.complete_task(job, idx2, _record(1), worker="w1")
        status = store.job_status(job)
        assert status["state"] == "done"
        assert status["done"] == 2 and status["pending"] == 0

    def test_empty_job_rejected(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite")
        with pytest.raises(JobError, match="at least one task"):
            store.create_job(spec={}, tasks=[])

    def test_unknown_job_raises(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite")
        with pytest.raises(JobError, match="unknown job"):
            store.job_status(999)
        with pytest.raises(JobError, match="unknown job"):
            store.job_context(999)

    def test_failed_task_fails_the_job(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite")
        job = store.create_job(spec={}, tasks=_tasks(2))
        store.claim_task("w1")
        store.fail_task(job, 0, "ValueError: boom", worker="w1")
        assert store.job_status(job)["state"] == "failed"

    def test_claim_is_exactly_once(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite")
        job = store.create_job(spec={}, tasks=_tasks(8))
        claimed: list[tuple[int, int]] = []
        lock = threading.Lock()

        def claim_all(name):
            while True:
                claim = store.claim_task(name, job_id=job)
                if claim is None:
                    return
                with lock:
                    claimed.append(claim[:2])

        threads = [
            threading.Thread(target=claim_all, args=(f"w{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(claimed) == [(job, i) for i in range(8)]
        assert len(set(claimed)) == 8

    def test_context_round_trips_through_pickle(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite")
        context = ([({"k": 2}, "instance-placeholder")], {"ours": "adapter"})
        job = store.create_job(spec={}, tasks=_tasks(1), context=context)
        assert store.job_context(job) == context
        assert store.job_context(store.create_job(spec={}, tasks=_tasks(1))) is None

    def test_audit_trail_records_transitions(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite")
        job = store.create_job(spec={}, tasks=_tasks(2))
        store.claim_task("w1", job_id=job)
        store.complete_task(job, 0, _record(0), worker="w1")
        store.claim_task("w2", job_id=job)
        store.fail_task(job, 1, "boom", worker="w2")
        events = [(e["idx"], e["event"]) for e in store.audit_log(job)]
        assert events == [
            (None, "created"),
            (0, "claimed"),
            (0, "done"),
            (1, "claimed"),
            (1, "failed"),
        ]
        failed = store.audit_log(job)[-1]
        assert failed["worker"] == "w2" and failed["detail"] == "boom"

    def test_list_jobs_in_id_order(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite")
        first = store.create_job(spec={"kind": "a"}, tasks=_tasks(1))
        second = store.create_job(spec={"kind": "b"}, tasks=_tasks(1))
        listed = store.list_jobs()
        assert [j["id"] for j in listed] == [first, second]
        assert listed[1]["spec"]["kind"] == "b"


class TestRecordStreaming:
    def test_iter_records_streams_in_grid_order(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite")
        job = store.create_job(spec={}, tasks=_tasks(3))
        # Complete out of order: 2, 0, 1.  The stream must still yield 0, 1, 2.
        for _ in range(3):
            store.claim_task("w1", job_id=job)
        for idx in (2, 0, 1):
            store.complete_task(job, idx, _record(idx))
        trials = [r.trial for r in store.iter_records(job, timeout=5.0)]
        assert trials == [0, 1, 2]

    def test_iter_records_raises_on_failed_task(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite")
        job = store.create_job(spec={}, tasks=_tasks(2))
        store.claim_task("w1", job_id=job)
        store.complete_task(job, 0, _record(0))
        store.claim_task("w1", job_id=job)
        store.fail_task(job, 1, "ZeroDivisionError: boom")
        it = store.iter_records(job, timeout=5.0)
        assert next(it).trial == 0
        with pytest.raises(JobError, match="ZeroDivisionError: boom"):
            next(it)

    def test_iter_records_times_out_without_workers(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite")
        job = store.create_job(spec={}, tasks=_tasks(1))
        with pytest.raises(JobError, match="timed out"):
            list(store.iter_records(job, timeout=0.05, poll_interval=0.01))

    def test_records_returns_only_completed(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite")
        job = store.create_job(spec={}, tasks=_tasks(3))
        store.claim_task("w1", job_id=job)
        store.complete_task(job, 0, _record(0))
        assert [r.trial for r in store.records(job)] == [0]


class TestSweepTasks:
    def test_canonical_grid_order_and_digests(self):
        spec = dict(SWEEP_SPEC, algorithms=["ours", "spectral"])
        tasks = sweep_tasks(spec)
        coords = [(t.index, t.algorithm, t.trial) for t in tasks]
        assert coords == [
            (i, name, trial)
            for i in range(2)
            for name in ("ours", "spectral")
            for trial in range(2)
        ]
        for task in tasks:
            inst = task.instance
            assert inst["digest"] == instance_digest(
                inst["generator"], inst["params"], inst["seed"]
            )
            assert inst["generator"] == "cycle_of_cliques"
            assert task.options["keep_labels"] is True
        assert tasks[0].instance["params"] == {"k": 2, "clique_size": 8}
        assert tasks[0].config == {"size": 8, "algorithm": "ours"}

    def test_sbm_and_expander_families(self):
        sbm = sweep_tasks(
            {"family": "sbm", "sizes": [60], "k": 3, "p_in": 0.5, "p_out": 0.02}
        )[0]
        assert sbm.instance["generator"] == "planted_partition"
        assert sbm.instance["params"]["p_in"] == 0.5
        assert sbm.instance["params"]["ensure_connected"] is True
        exp = sweep_tasks({"family": "expanders", "sizes": [40], "degree": 6})[0]
        assert exp.instance["generator"] == "ring_of_expanders"
        assert exp.instance["params"]["d"] == 6

    def test_invalid_specs_rejected(self):
        with pytest.raises(JobError, match="unknown family"):
            sweep_tasks({"family": "hypercubes", "sizes": [8]})
        with pytest.raises(JobError, match="sizes"):
            sweep_tasks({"family": "sbm", "sizes": []})
        with pytest.raises(JobError, match="trials"):
            sweep_tasks({"family": "sbm", "sizes": [8], "trials": 0})

    def test_submit_rejects_unknown_algorithm_up_front(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite")
        with pytest.raises(JobError, match="unknown algorithm"):
            submit_sweep(store, dict(SWEEP_SPEC, algorithms=["becchetti"]))
        assert store.list_jobs() == []


class TestResolution:
    def test_make_algorithm_unknown_name(self):
        with pytest.raises(JobError, match="unknown algorithm"):
            make_algorithm({"name": "kmeans"})

    def test_make_algorithm_families_build(self):
        for name in ("ours", "spectral", "label-propagation"):
            assert callable(make_algorithm({"name": name}))
        assert callable(
            make_algorithm({"name": "ours", "drop_prob": 0.1, "crash_prob": 0.05})
        )

    def test_resolve_instance_digest_mismatch(self, tmp_path):
        spec = sweep_tasks(SWEEP_SPEC)[0].instance
        bad = dict(spec, digest="0" * len(spec["digest"]))
        with pytest.raises(JobError, match="digest mismatch"):
            resolve_instance(bad, cache_dir=tmp_path)

    def test_resolve_instance_materialises_through_cache(self, tmp_path):
        spec = sweep_tasks(SWEEP_SPEC)[0].instance
        instance = resolve_instance(spec, cache_dir=tmp_path)
        assert instance.graph.n == 16  # k=2 cliques of size 8


class TestWorker:
    def test_digest_addressed_job_end_to_end(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite")
        cache = tmp_path / "cache"
        job = submit_sweep(store, SWEEP_SPEC)
        ran = Worker(store, name="w1", cache_dir=cache).run_job(job)
        assert ran == 4  # 2 sizes x 1 algorithm x 2 trials
        status = store.job_status(job)
        assert status["state"] == "done" and status["failed"] == 0

        records = store.records(job)
        assert len(records) == 4
        for record in records:
            assert record.values["algorithm"] == "ours"
            assert "_labels" not in record.values  # popped into the store

        # keep_labels persisted one vector per (instance, trial seed)
        stores = list_label_stores(cache)
        assert len(stores) == 2
        task = sweep_tasks(SWEEP_SPEC)[0]
        labels = query_labels(
            cache, task.instance["digest"], np.arange(16), seed=task.seed
        )
        assert labels.shape == (16,)
        assert labels.min() >= 0

    def test_worker_records_failure_not_exception(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite")
        spec = sweep_tasks(SWEEP_SPEC)[0].instance
        bad = dict(spec, digest="0" * len(spec["digest"]))
        task = TrialTask(
            index=0, algorithm="ours", trial=0,
            instance=bad, options={"name": "ours"},
        )
        job = store.create_job(spec={}, tasks=[task])
        worker = Worker(store, name="w1", cache_dir=tmp_path / "cache")
        assert worker.run_once() is True  # the claim happened
        status = store.job_status(job)
        assert status["state"] == "failed"
        (event,) = [e for e in store.audit_log(job) if e["event"] == "failed"]
        assert "JobError" in event["detail"]
        assert "digest mismatch" in event["detail"]

    def test_task_without_context_or_specs_fails(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite")
        job = store.create_job(spec={}, tasks=_tasks(1))
        Worker(store).run_once()
        assert store.job_status(job)["state"] == "failed"

    def test_run_once_returns_false_when_dry(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite")
        assert Worker(store).run_once() is False

    def test_concurrent_workers_drain_one_job(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite")
        cache = tmp_path / "cache"
        job = submit_sweep(store, dict(SWEEP_SPEC, trials=3))
        counts = {}

        def drain(name):
            counts[name] = Worker(store, name=name, cache_dir=cache).run_job(job)

        threads = [
            threading.Thread(target=drain, args=(f"w{i}",)) for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(counts.values()) == 6
        assert store.job_status(job)["state"] == "done"

    def test_worker_run_loop_stops_on_event(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite")
        submit_sweep(store, dict(SWEEP_SPEC, sizes=[8], trials=1))
        stop = threading.Event()
        worker = Worker(store, cache_dir=tmp_path / "cache")
        thread = threading.Thread(
            target=worker.run, kwargs={"poll_interval": 0.01, "stop": stop}
        )
        thread.start()
        deadline = 30.0
        while store.list_jobs()[0]["state"] != "done" and deadline > 0:
            stop.wait(0.05)
            deadline -= 0.05
        stop.set()
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert store.list_jobs()[0]["state"] == "done"
