"""Label stores: round-trip, atomicity, corruption, concurrent readers."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.service.labels import (
    LabelStoreError,
    label_store_dir,
    list_label_stores,
    open_labels,
    query_labels,
    write_labels,
)

GEN = "planted_partition"
DIGEST = "0123abcd4567ef89"


class TestRoundTrip:
    def test_write_then_point_and_batch_lookup(self, tmp_path):
        labels = np.array([0, 0, 1, 2, 1], dtype=np.int64)
        path = write_labels(tmp_path, GEN, DIGEST, "ours", 873, labels)
        assert path.parent == label_store_dir(tmp_path, GEN, DIGEST)
        assert path.name == "labels-ours-873.npy"

        assert int(query_labels(tmp_path, DIGEST, 3)) == 2
        batch = query_labels(tmp_path, DIGEST, [0, 2, 4], algorithm="ours", seed=873)
        assert batch.tolist() == [0, 1, 1]
        assert batch.dtype == np.int64

    def test_open_labels_is_memory_mapped(self, tmp_path):
        write_labels(tmp_path, GEN, DIGEST, "ours", 1, np.arange(100))
        arr = open_labels(tmp_path, DIGEST)
        assert isinstance(arr, np.memmap)
        assert arr[42] == 42

    def test_input_dtype_is_normalised_to_int64(self, tmp_path):
        write_labels(tmp_path, GEN, DIGEST, "ours", 1, np.array([1, 0], dtype=np.int32))
        assert open_labels(tmp_path, DIGEST).dtype == np.int64

    def test_atomic_overwrite_serves_the_new_vector(self, tmp_path):
        write_labels(tmp_path, GEN, DIGEST, "ours", 7, [0, 1, 2])
        write_labels(tmp_path, GEN, DIGEST, "ours", 7, [2, 1, 0])
        assert query_labels(tmp_path, DIGEST, [0, 2]).tolist() == [2, 0]

    def test_hyphenated_algorithm_names_round_trip(self, tmp_path):
        write_labels(tmp_path, GEN, DIGEST, "label-propagation", 1888, [5, 6])
        (store,) = list_label_stores(tmp_path)
        (file,) = store.files
        assert file.algorithm == "label-propagation"
        assert file.seed == 1888
        assert query_labels(
            tmp_path, DIGEST, 1, algorithm="label-propagation"
        ).tolist() == 6


class TestListing:
    def test_list_label_stores(self, tmp_path):
        write_labels(tmp_path, GEN, "aaaa", "ours", 1, [0])
        write_labels(tmp_path, GEN, "aaaa", "spectral", 2, [0])
        write_labels(tmp_path, "cycle_of_cliques", "bbbb", "ours", 3, [0, 1])
        stores = {s.digest: s for s in list_label_stores(tmp_path)}
        assert set(stores) == {"aaaa", "bbbb"}
        assert len(stores["aaaa"].files) == 2
        assert stores["bbbb"].generator == "cycle_of_cliques"
        assert stores["aaaa"].nbytes > 0

    def test_empty_or_missing_dir(self, tmp_path):
        assert list_label_stores(tmp_path) == []
        assert list_label_stores(tmp_path / "nope") == []

    def test_unrelated_files_ignored(self, tmp_path):
        store = label_store_dir(tmp_path, GEN, DIGEST)
        store.mkdir()
        (store / "notes.txt").write_text("not labels")
        (store / "labels-bad.npy").write_bytes(b"no seed suffix")
        write_labels(tmp_path, GEN, DIGEST, "ours", 1, [0])
        (single,) = list_label_stores(tmp_path)
        assert [f.path.name for f in single.files] == ["labels-ours-1.npy"]


class TestErrors:
    def test_unknown_digest(self, tmp_path):
        write_labels(tmp_path, GEN, DIGEST, "ours", 1, [0])
        with pytest.raises(LabelStoreError, match="no label store"):
            query_labels(tmp_path, "feedbeef00000000", 0)

    def test_ambiguous_lookup_lists_choices(self, tmp_path):
        write_labels(tmp_path, GEN, DIGEST, "ours", 873, [0])
        write_labels(tmp_path, GEN, DIGEST, "ours", 1873, [0])
        with pytest.raises(LabelStoreError, match="ambiguous.*1873"):
            open_labels(tmp_path, DIGEST, algorithm="ours")
        # seed= disambiguates
        assert open_labels(tmp_path, DIGEST, seed=873)[0] == 0

    def test_no_matching_vector_lists_available(self, tmp_path):
        write_labels(tmp_path, GEN, DIGEST, "ours", 873, [0])
        with pytest.raises(LabelStoreError, match="available.*ours"):
            open_labels(tmp_path, DIGEST, algorithm="spectral")

    def test_out_of_range_nodes(self, tmp_path):
        write_labels(tmp_path, GEN, DIGEST, "ours", 1, [0, 1, 2])
        with pytest.raises(LabelStoreError, match="node ids"):
            query_labels(tmp_path, DIGEST, [0, 3])
        with pytest.raises(LabelStoreError, match="node ids"):
            query_labels(tmp_path, DIGEST, -1)

    def test_non_vector_labels_rejected_at_write(self, tmp_path):
        with pytest.raises(LabelStoreError, match="1-D"):
            write_labels(tmp_path, GEN, DIGEST, "ours", 1, [[0, 1], [2, 3]])

    def test_corrupt_file_raises(self, tmp_path):
        path = write_labels(tmp_path, GEN, DIGEST, "ours", 1, np.arange(64))
        path.write_bytes(b"\x93NUMPY garbage that is not a valid header")
        with pytest.raises(LabelStoreError, match="corrupt"):
            open_labels(tmp_path, DIGEST)

    def test_wrong_payload_shape_raises(self, tmp_path):
        store = label_store_dir(tmp_path, GEN, DIGEST)
        store.mkdir(parents=True)
        np.save(store / "labels-ours-1.npy", np.zeros((2, 2)))
        with pytest.raises(LabelStoreError, match="1-D integer"):
            open_labels(tmp_path, DIGEST)


class TestConcurrentReaders:
    def test_many_threads_share_one_store(self, tmp_path):
        rng = np.random.default_rng(7)
        labels = rng.integers(0, 8, size=10_000)
        write_labels(tmp_path, GEN, DIGEST, "ours", 873, labels)

        errors: list[Exception] = []

        def reader(seed: int) -> None:
            try:
                local = np.random.default_rng(seed)
                for _ in range(50):
                    nodes = local.integers(0, labels.shape[0], size=16)
                    got = query_labels(tmp_path, DIGEST, nodes)
                    assert got.tolist() == labels[nodes].tolist()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
