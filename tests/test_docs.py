"""Doc-consistency checks: the docs/ subsystem must track the code.

CI runs these with the unit suite; they fail when a benchmark is added
without a catalog entry or when the README stops pointing at the docs
pages, so the documentation cannot silently rot.
"""

from __future__ import annotations

import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = REPO_ROOT / "docs"


def test_docs_pages_exist():
    assert (DOCS / "architecture.md").is_file()
    assert (DOCS / "experiments.md").is_file()


def test_every_benchmark_is_catalogued():
    catalog = (DOCS / "experiments.md").read_text(encoding="utf-8")
    bench_files = sorted(p.name for p in (REPO_ROOT / "benchmarks").glob("bench_e*.py"))
    assert bench_files, "no benchmark files found — wrong repo layout?"
    missing = [name for name in bench_files if name not in catalog]
    assert not missing, (
        f"benchmarks missing from docs/experiments.md: {missing} — "
        "add a catalog row for each (see 'Conventions for adding an experiment')"
    )


def test_catalog_has_no_stale_entries():
    catalog = (DOCS / "experiments.md").read_text(encoding="utf-8")
    referenced = set(re.findall(r"bench_e\d+\w*\.py", catalog))
    existing = {p.name for p in (REPO_ROOT / "benchmarks").glob("bench_e*.py")}
    stale = sorted(referenced - existing)
    assert not stale, f"docs/experiments.md references deleted benchmarks: {stale}"


def test_readme_links_docs_pages():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "docs/architecture.md" in readme
    assert "docs/experiments.md" in readme


def test_architecture_names_every_package():
    text = (DOCS / "architecture.md").read_text(encoding="utf-8")
    packages = [
        p.name for p in (REPO_ROOT / "src" / "repro").iterdir()
        if p.is_dir() and (p / "__init__.py").exists()
    ]
    missing = [name for name in packages if f"{name}/" not in text]
    assert not missing, f"docs/architecture.md does not mention packages: {missing}"
