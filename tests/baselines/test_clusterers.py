"""Tests shared across all baseline clusterers plus per-baseline specifics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    AveragingDynamics,
    BaselineResult,
    DecentralizedOrthogonalIteration,
    LabelPropagation,
    LocalClustering,
    MultilevelPartitioner,
    SpectralClustering,
    averaging_dynamics_values,
    push_sum_average,
    spectral_embedding,
)
from repro.baselines import all_baselines
from repro.graphs import cycle_of_cliques, planted_partition

ALL_BASELINES = [
    SpectralClustering(),
    AveragingDynamics(),
    DecentralizedOrthogonalIteration(exact_aggregation=True),
    LabelPropagation(),
    MultilevelPartitioner(),
    LocalClustering(),
]


@pytest.fixture(scope="module")
def easy_instance():
    return cycle_of_cliques(3, 15, seed=0)


class TestCommonInterface:
    @pytest.mark.parametrize("baseline", ALL_BASELINES, ids=lambda b: b.name)
    def test_returns_valid_result(self, baseline, easy_instance):
        result = baseline.cluster(easy_instance.graph, 3, seed=0)
        assert isinstance(result, BaselineResult)
        assert result.partition.n == easy_instance.graph.n
        assert result.rounds >= 0
        assert result.words >= 0

    @pytest.mark.parametrize(
        "baseline",
        [b for b in ALL_BASELINES if b.name != "local-ppr"],
        ids=lambda b: b.name,
    )
    def test_solves_easy_instance(self, baseline, easy_instance):
        result = baseline.cluster(easy_instance.graph, 3, seed=0)
        assert result.error_against(easy_instance.partition) <= 0.10

    def test_all_baselines_registry(self):
        names = {b.name for b in all_baselines()}
        assert names == {
            "spectral",
            "averaging-dynamics",
            "kempe-mcsherry",
            "label-propagation",
            "multilevel",
            "local-ppr",
        }


class TestSpectral:
    def test_embedding_shape_and_rows_normalised(self, easy_instance):
        emb = spectral_embedding(easy_instance.graph, 3)
        assert emb.shape == (easy_instance.graph.n, 3)
        assert np.allclose(np.linalg.norm(emb, axis=1), 1.0)

    def test_sbm_recovery(self):
        inst = planted_partition(120, 3, 0.4, 0.02, seed=1, ensure_connected=True)
        result = SpectralClustering().cluster(inst.graph, 3, seed=0)
        assert result.error_against(inst.partition) <= 0.05


class TestAveragingDynamics:
    def test_values_shape(self, easy_instance):
        values = averaging_dynamics_values(easy_instance.graph, 10, dimensions=3, seed=0)
        assert values.shape == (easy_instance.graph.n, 3)

    def test_two_cluster_sign_rule(self):
        inst = cycle_of_cliques(2, 15, seed=2)
        result = AveragingDynamics().cluster(inst.graph, 2, seed=3)
        assert result.error_against(inst.partition) <= 0.1

    def test_communication_scales_with_edges_and_rounds(self, easy_instance):
        result = AveragingDynamics(rounds=20, dimensions=2).cluster(easy_instance.graph, 3, seed=0)
        assert result.rounds == 20
        assert result.words == 2 * easy_instance.graph.num_edges * 2 * 20


class TestKempeMcSherry:
    def test_pushsum_average_accuracy_on_expander(self):
        # Push-sum converges within the mixing time; on an expander a couple
        # of hundred rounds are ample.
        from repro.graphs import random_regular_graph

        graph = random_regular_graph(40, 8, seed=0).graph
        rng = np.random.default_rng(0)
        values = rng.random((graph.n, 2))
        estimates = push_sum_average(graph, values, 200, rng=rng)
        true_mean = values.mean(axis=0)
        assert np.allclose(estimates, true_mean[np.newaxis, :], atol=0.05)

    def test_pushsum_slow_on_clustered_graph(self, easy_instance):
        """The paper's Section 1.3 argument: gossip aggregation is governed by
        the *global* mixing time, which is large on a well-clustered graph —
        after the same 200 rounds the estimates are still far from the mean."""
        rng = np.random.default_rng(0)
        values = rng.random((easy_instance.graph.n, 2))
        estimates = push_sum_average(easy_instance.graph, values, 200, rng=rng)
        true_mean = values.mean(axis=0)
        worst = np.abs(estimates - true_mean[np.newaxis, :]).max()
        assert worst > 0.02

    def test_rounds_account_for_pushsum(self, easy_instance):
        result = DecentralizedOrthogonalIteration(
            iterations=3, pushsum_rounds=10, exact_aggregation=True
        ).cluster(easy_instance.graph, 3, seed=0)
        assert result.rounds == 3 * 11
        assert result.info["iterations"] == 3

    def test_gossip_variant_still_reasonable(self, easy_instance):
        result = DecentralizedOrthogonalIteration(
            iterations=8, pushsum_rounds=60, exact_aggregation=False
        ).cluster(easy_instance.graph, 3, seed=1)
        assert result.error_against(easy_instance.partition) <= 0.34


class TestLabelPropagation:
    def test_stops_when_stable(self, easy_instance):
        result = LabelPropagation(max_rounds=100).cluster(easy_instance.graph, 3, seed=0)
        assert result.rounds < 100
        assert result.info["clusters_found"] >= 1

    def test_invalid_max_rounds(self):
        with pytest.raises(ValueError):
            LabelPropagation(max_rounds=0)


class TestMultilevel:
    def test_balanced_partition(self, easy_instance):
        result = MultilevelPartitioner().cluster(easy_instance.graph, 3, seed=0)
        sizes = result.partition.sizes
        assert sizes.min() >= 0.5 * easy_instance.graph.n / 3
        assert result.info["cut_weight"] >= 0

    def test_larger_graph_with_coarsening(self):
        inst = planted_partition(300, 4, 0.2, 0.01, seed=5, ensure_connected=True)
        result = MultilevelPartitioner(coarsen_until=30).cluster(inst.graph, 4, seed=1)
        assert result.info["levels"] >= 1
        assert result.error_against(inst.partition) <= 0.15


class TestLocalClustering:
    def test_ppr_vector_properties(self, easy_instance):
        from repro.baselines import approximate_personalized_pagerank

        p = approximate_personalized_pagerank(easy_instance.graph, 0, alpha=0.2, epsilon=1e-5)
        assert p.shape == (easy_instance.graph.n,)
        assert np.all(p >= 0)
        assert p.sum() <= 1.0 + 1e-9
        assert p[0] > 0

    def test_nibble_finds_low_conductance_set(self, easy_instance):
        from repro.baselines import pagerank_nibble

        nodes, phi = pagerank_nibble(easy_instance.graph, 0, epsilon=1e-5)
        assert phi <= 0.1
        # the set should essentially be the seed's clique
        truth_cluster = set(easy_instance.partition.cluster(0).tolist())
        assert len(set(nodes.tolist()) & truth_cluster) >= 10

    def test_invalid_parameters(self, easy_instance):
        from repro.baselines import approximate_personalized_pagerank

        with pytest.raises(ValueError):
            approximate_personalized_pagerank(easy_instance.graph, 0, alpha=1.5)
        with pytest.raises(ValueError):
            approximate_personalized_pagerank(easy_instance.graph, 0, epsilon=0)


class TestMultilevelOnMmapStorage:
    def test_weighted_graph_builds_blocked_from_mmap(self, tmp_path, monkeypatch):
        # WeightedGraph.from_graph streams row blocks, so an mmap-backed
        # instance must build the identical adjacency dicts without ever
        # materialising the indices array.
        from repro.baselines.multilevel import WeightedGraph
        from repro.graphs import Graph, MmapStorage

        g = planted_partition(60, 2, 0.4, 0.05, seed=4).graph
        indptr, indices = g.csr_arrays()
        MmapStorage.write(tmp_path / "g.csr", np.asarray(indptr), np.asarray(indices), shard_arcs=30)
        mm = Graph.from_storage(MmapStorage(tmp_path / "g.csr"))
        reference = WeightedGraph.from_graph(g)

        def _boom(self):  # pragma: no cover - failure path
            raise AssertionError("from_graph must stream row blocks")

        monkeypatch.setattr(MmapStorage, "indices_array", _boom)
        got = WeightedGraph.from_graph(mm)
        assert got.adjacency == reference.adjacency
        assert np.array_equal(got.node_weights, reference.node_weights)
