"""Unit tests for the self-contained k-means implementation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import kmeans, kmeans_plus_plus_init


def _blobs(rng, centers, points_per_blob=30, scale=0.3):
    data = []
    for c in centers:
        data.append(rng.normal(loc=c, scale=scale, size=(points_per_blob, len(c))))
    return np.vstack(data)


class TestKMeansPlusPlus:
    def test_centres_are_data_points(self):
        rng = np.random.default_rng(0)
        points = rng.random((40, 3))
        centers = kmeans_plus_plus_init(points, 4, rng)
        assert centers.shape == (4, 3)
        for c in centers:
            assert np.any(np.all(np.isclose(points, c), axis=1))

    def test_k_larger_than_n_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            kmeans_plus_plus_init(np.zeros((3, 2)), 4, rng)

    def test_duplicate_points_handled(self):
        rng = np.random.default_rng(1)
        points = np.zeros((10, 2))
        centers = kmeans_plus_plus_init(points, 3, rng)
        assert centers.shape == (3, 2)


class TestKMeans:
    def test_separated_blobs_recovered(self):
        rng = np.random.default_rng(2)
        points = _blobs(rng, [(0, 0), (10, 0), (0, 10)])
        result = kmeans(points, 3, seed=0)
        labels = result.labels
        # each blob of 30 points should be a single cluster
        for b in range(3):
            blob_labels = labels[b * 30 : (b + 1) * 30]
            assert np.unique(blob_labels).size == 1
        assert result.converged

    def test_inertia_decreases_with_more_clusters(self):
        rng = np.random.default_rng(3)
        points = _blobs(rng, [(0, 0), (5, 5)])
        one = kmeans(points, 1, seed=1).inertia
        two = kmeans(points, 2, seed=1).inertia
        assert two < one

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(4)
        points = _blobs(rng, [(0, 0), (4, 4)])
        a = kmeans(points, 2, seed=7)
        b = kmeans(points, 2, seed=7)
        assert np.array_equal(a.labels, b.labels)

    def test_k_one(self):
        points = np.random.default_rng(5).random((20, 2))
        result = kmeans(points, 1, seed=0)
        assert np.all(result.labels == 0)
        assert np.allclose(result.centers[0], points.mean(axis=0))

    def test_k_equals_n(self):
        points = np.arange(10, dtype=float).reshape(5, 2)
        result = kmeans(points, 5, seed=0)
        assert np.unique(result.labels).size == 5
        assert result.inertia == pytest.approx(0.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros(5), 2)
        with pytest.raises(ValueError):
            kmeans(np.zeros((5, 2)), 0)

    def test_labels_cover_all_clusters(self):
        rng = np.random.default_rng(6)
        points = _blobs(rng, [(0, 0), (8, 0), (0, 8), (8, 8)])
        result = kmeans(points, 4, seed=2)
        assert np.unique(result.labels).size == 4
