"""E22 — the 10⁷ regime: cold build, fully-scored sweep and analyse, budgeted.

PR 9 removes the three blockers that kept n = 10⁷ from being routine: pass B
of the streamed shard build now reads its spill **once** (bucketed by row
window instead of re-scanned per window), evaluation metrics stream over
``iter_row_blocks`` (one O(m + k) sweep scores *all* clusters), and the
sweep/analyse CLIs report the full metric set on memory-mapped instances.
This benchmark caps the whole regime, every stage in a fresh subprocess:

* **cold build** — LFR→shard at n = 10⁷ (smoke: 10⁵), streamed vs
  materialising.  Gates: byte-identical entries and scratch-I/O read
  amplification ≤ 1.5× (**hard in all modes**); streamed peak RSS ≤ 0.5×
  materialising and the wall-clock budget (full mode only — a shared
  runner's interpreter baseline swamps RSS at smoke sizes).
* **scored sweep** — ``repro sweep sbm --mmap --backend parallel
  --structural``: the paper's algorithm plus label-free conductance/cut
  scoring, end to end on the mapped entry.  Gates: per-trial records equal
  to the dense arm's bit for bit (hard in all modes; the streamed metrics
  are bit-identical across storage backends by construction), mmap peak
  RSS ≤ 0.5× dense and wall-clock budget in full mode.
* **analyse** — ``repro analyse <entry> --mmap`` on the sweep's sbm entry
  (k = 4; the LFR build entry has hundreds of communities, and the
  diagnostic's top-k eigensolve scales with k): the full diagnostic block
  (conductances, spectrum, Υ, T) without materialising the adjacency.
  Gates: diagnostic text identical to the dense arm (hard), RSS ratio and
  budget in full mode.
* **dense win** — the streamed ``cluster_conductances`` must also beat the
  legacy per-cluster O(k·m) loop (kept here as the oracle) ≥ 5× at
  n = 10⁶, k = 16 on **dense** storage, value-identical (identity hard in
  all modes, the speedup bar full-mode only).

``BENCH_SMOKE=1`` (CI) trims every n and keeps the identity and I/O gates
hard while the RSS/wall-clock/speedup bars only warn.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import warnings
from pathlib import Path

import numpy as np

from _utils import print_table, run_measured_subprocess

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

# Cold-build workload (LFR, same family as E20 but one decade up).
N_BUILD = 100_000 if SMOKE else 10_000_000
MU = 0.2
AVERAGE_DEGREE = 10
SEED = 11

# Scored-sweep workload (planted partition through the CLI).
SWEEP_N = 20_000 if SMOKE else 10_000_000
SWEEP_TRIALS = 1
SWEEP_SEED = 23

# Dense streamed-conductance win vs the legacy per-cluster loop.
COND_N = 100_000 if SMOKE else 1_000_000
COND_K = 16

RSS_BAR = 0.5  # streamed/mmap peak RSS <= this fraction of materialising
SPILL_READ_BAR = 1.5  # scratch bytes read / scratch bytes written
SPEEDUP_BAR = 5.0  # streamed cluster_conductances vs legacy loop (dense)

#: wall-clock budgets in seconds, asserted in full mode only; smoke sizes
#: finish in seconds and assert nothing about time.
WALL_BUDGET = {"build": 3600.0, "sweep": 5400.0, "analyse": 1800.0}

_BUILD_TEMPLATE = """
import json, time
from repro.graphs import cached_instance, generate_to_cache
from _utils import peak_rss_bytes, spill_io_probe

start = time.perf_counter()
if {streamed}:
    inst, spill_io = spill_io_probe(lambda: generate_to_cache(
        "lfr_benchmark", seed={seed}, cache_dir={cache_dir!r},
        n={n}, mu={mu!r}, average_degree={deg}, ensure_connected=False,
    ))
else:
    spill_io = None
    inst = cached_instance(
        "lfr_benchmark", seed={seed}, cache_dir={cache_dir!r},
        mmap=True, streaming=False,
        n={n}, mu={mu!r}, average_degree={deg}, ensure_connected=False,
    )
elapsed = time.perf_counter() - start
print(json.dumps({{
    "peak_rss": peak_rss_bytes(),
    "seconds": elapsed,
    "num_edges": int(inst.graph.num_edges),
    "spill_io": spill_io,
}}))
"""

# The sweep CLI runs in-process inside the measured subprocess (serial
# executor, one worker) so peak_rss_bytes() covers generation, clustering
# and the streamed structural scoring end to end.
_SWEEP_TEMPLATE = """
import contextlib, io, json, time
from repro.cli import main
from _utils import peak_rss_bytes

argv = [
    "sweep", "sbm",
    "--sizes", "{n}",
    "--k", "4",
    "--p-in", "{p_in!r}",
    "--p-out", "{p_out!r}",
    "--backend", "parallel",
    "--structural",
    "--trials", "{trials}",
    "--seed", "{seed}",
    "--cache-dir", {cache_dir!r},
    "--json", {json_path!r},
]
if {mmap}:
    argv.append("--mmap")
start = time.perf_counter()
buffer = io.StringIO()
with contextlib.redirect_stdout(buffer):
    code = main(argv)
elapsed = time.perf_counter() - start
assert code == 0, buffer.getvalue()
print(json.dumps({{
    "peak_rss": peak_rss_bytes(),
    "seconds": elapsed,
}}))
"""

_ANALYSE_TEMPLATE = """
import contextlib, io, json, time
from repro.cli import main
from _utils import peak_rss_bytes

argv = ["analyse", {entry!r}]
if {mmap}:
    argv.append("--mmap")
start = time.perf_counter()
buffer = io.StringIO()
with contextlib.redirect_stdout(buffer):
    code = main(argv)
elapsed = time.perf_counter() - start
assert code == 0, buffer.getvalue()
print(json.dumps({{
    "peak_rss": peak_rss_bytes(),
    "seconds": elapsed,
    "output": buffer.getvalue(),
}}))
"""


def _probabilities(n: int) -> tuple[float, float]:
    cluster = n // 4
    return float(2.0 * np.log(n) / cluster), float(2.0 / (n - cluster))


def _measure_cold_build(cache_dir: str, *, streamed: bool) -> dict:
    return run_measured_subprocess(
        _BUILD_TEMPLATE.format(
            streamed=streamed, seed=SEED, cache_dir=cache_dir,
            n=N_BUILD, mu=MU, deg=AVERAGE_DEGREE,
        ),
        timeout=2.0 * WALL_BUDGET["build"],
    )


def _measure_sweep(cache_dir: str, json_path: str, *, mmap: bool) -> dict:
    p_in, p_out = _probabilities(SWEEP_N)
    measured = run_measured_subprocess(
        _SWEEP_TEMPLATE.format(
            n=SWEEP_N, p_in=p_in, p_out=p_out, trials=SWEEP_TRIALS,
            seed=SWEEP_SEED, cache_dir=cache_dir, json_path=json_path,
            mmap=mmap,
        ),
        timeout=2.0 * WALL_BUDGET["sweep"],
    )
    measured["records"] = json.loads(Path(json_path).read_text(encoding="utf-8"))
    return measured


def _measure_analyse(entry: str, *, mmap: bool) -> dict:
    return run_measured_subprocess(
        _ANALYSE_TEMPLATE.format(entry=entry, mmap=mmap),
        timeout=2.0 * WALL_BUDGET["analyse"],
    )


def _assert_trees_identical(a: Path, b: Path) -> int:
    """Assert two cache directories hold byte-identical file trees."""
    files_a = sorted(str(p.relative_to(a)) for p in a.rglob("*") if p.is_file())
    files_b = sorted(str(p.relative_to(b)) for p in b.rglob("*") if p.is_file())
    assert files_a == files_b, (
        "streamed and materialising builds wrote different file sets: "
        f"{files_a} vs {files_b}"
    )
    total = 0
    for rel in files_a:
        bytes_a = (a / rel).read_bytes()
        bytes_b = (b / rel).read_bytes()
        assert bytes_a == bytes_b, (
            f"cache entry file {rel!r} differs between the streamed and "
            "materialising generation paths"
        )
        total += len(bytes_a)
    return total


def _only_entry_dir(cache_dir: Path) -> Path:
    entries = sorted(p for p in cache_dir.iterdir() if p.is_dir())
    assert len(entries) == 1, f"expected one cache entry, found {entries}"
    return entries[0]


def _legacy_cluster_conductances(graph, partition) -> np.ndarray:
    """The pre-streaming per-cluster O(k·m) loop, kept as the timing oracle.

    One membership mask and one full arc scan *per cluster* — exactly the
    cost profile ``cluster_conductances`` had before the one-sweep
    accumulator, and the reference its values must still match bit for bit.
    """
    indptr, indices = graph.csr_arrays()
    degrees = graph.degrees
    rows = np.repeat(np.arange(graph.n, dtype=np.int64), np.diff(indptr))
    labels = partition.labels
    phis = np.empty(partition.k, dtype=np.float64)
    for c in range(partition.k):
        mask = labels == c
        u_in = mask[rows]
        v_in = mask[indices]
        cut_arcs = int(np.count_nonzero(u_in != v_in))
        both = u_in & v_in
        loops = int(np.count_nonzero(both & (rows == indices)))
        internal = (int(np.count_nonzero(both)) - loops) // 2
        vol = int(degrees[mask].sum()) - internal
        phis[c] = np.float64(cut_arcs // 2) / np.float64(vol)
    return phis


def _conductance_speedup() -> dict:
    from repro.graphs import cluster_conductances, planted_partition

    p_in, p_out = _probabilities(COND_N)
    instance = planted_partition(
        COND_N, COND_K, p_in * 4.0, p_out, seed=SEED, ensure_connected=False
    )
    graph, partition = instance.graph, instance.partition

    start = time.perf_counter()
    legacy = _legacy_cluster_conductances(graph, partition)
    legacy_seconds = time.perf_counter() - start

    start = time.perf_counter()
    streamed = cluster_conductances(graph, partition)
    streamed_seconds = time.perf_counter() - start

    assert np.array_equal(streamed, legacy), (
        "streamed cluster_conductances diverged from the legacy per-cluster "
        "oracle"
    )
    return {
        "n": COND_N,
        "k": COND_K,
        "legacy_seconds": legacy_seconds,
        "streamed_seconds": streamed_seconds,
        "speedup": legacy_seconds / max(streamed_seconds, 1e-12),
    }


def _soft_gate(condition: bool, message: str) -> None:
    """Hard assert in full mode, warning in smoke (small-n noise)."""
    if condition:
        return
    if SMOKE:
        warnings.warn(message + " (smoke size; the gate applies in full mode)",
                      stacklevel=2)
    else:
        raise AssertionError(message)


def test_e22_scale_regime(benchmark):
    results: dict = {}

    def run_regime() -> None:
        with tempfile.TemporaryDirectory() as mat_dir, \
                tempfile.TemporaryDirectory() as stream_dir:
            materialising = _measure_cold_build(mat_dir, streamed=False)
            streamed = _measure_cold_build(stream_dir, streamed=True)
            assert streamed["num_edges"] == materialising["num_edges"]
            entry_bytes = _assert_trees_identical(Path(stream_dir), Path(mat_dir))
        results["build"] = {"materialising": materialising, "streamed": streamed}
        results["entry_bytes"] = entry_bytes

        with tempfile.TemporaryDirectory() as sweep_dir:
            root = Path(sweep_dir)
            (root / "dense-cache").mkdir()
            (root / "mmap-cache").mkdir()
            dense = _measure_sweep(
                str(root / "dense-cache"), str(root / "dense.json"), mmap=False
            )
            mmap = _measure_sweep(
                str(root / "mmap-cache"), str(root / "mmap.json"), mmap=True
            )
            # The scored sweep leaves its sharded sbm entry behind — reuse
            # it as the analyse workload (same n, ground-truth labels, k=4).
            entry = _only_entry_dir(root / "mmap-cache")
            analyse_mmap = _measure_analyse(str(entry), mmap=True)
            analyse_dense = _measure_analyse(str(entry), mmap=False)
        results["sweep"] = {"dense": dense, "mmap": mmap}
        results["analyse"] = {"mmap": analyse_mmap, "dense": analyse_dense}

        results["conductance"] = _conductance_speedup()

    benchmark.pedantic(run_regime, rounds=1, iterations=1)

    build = results["build"]
    sweep = results["sweep"]
    analyse = results["analyse"]
    cond = results["conductance"]

    # ---- hard gates, every mode ---------------------------------------- #
    spill_io = build["streamed"]["spill_io"]
    assert spill_io["bytes_written"] > 0, "streamed build spilled nothing"
    assert spill_io["read_amplification"] <= SPILL_READ_BAR, (
        f"streamed build read {spill_io['read_amplification']:.2f}x the "
        f"scratch bytes it wrote (bar {SPILL_READ_BAR}): the one-pass spill "
        "has regressed toward the per-window re-scan"
    )
    assert sweep["mmap"]["records"] == sweep["dense"]["records"], (
        "--mmap --structural sweep records diverged from the dense arm"
    )
    assert len(sweep["mmap"]["records"]) == SWEEP_TRIALS
    record_values = sweep["mmap"]["records"][0]["values"]
    for column in ("error", "ari", "nmi", "max_conductance", "normalized_cut"):
        assert column in record_values, (
            f"scored sweep record is missing the {column!r} metric"
        )
    strip = lambda text: text.replace(" [mmap]", "")
    assert strip(analyse["mmap"]["output"]) == strip(analyse["dense"]["output"]), (
        "analyse --mmap diagnostics diverged from the dense arm"
    )
    assert "conductance" in analyse["mmap"]["output"]

    # ---- RSS / wall-clock / speedup gates (full mode) ------------------- #
    build_ratio = build["streamed"]["peak_rss"] / build["materialising"]["peak_rss"]
    sweep_ratio = sweep["mmap"]["peak_rss"] / sweep["dense"]["peak_rss"]
    analyse_ratio = analyse["mmap"]["peak_rss"] / analyse["dense"]["peak_rss"]
    _soft_gate(
        build_ratio <= RSS_BAR,
        f"streamed build peak RSS {build_ratio:.2f}x materialising (bar {RSS_BAR})",
    )
    _soft_gate(
        sweep_ratio <= RSS_BAR,
        f"--mmap sweep peak RSS {sweep_ratio:.2f}x dense (bar {RSS_BAR})",
    )
    _soft_gate(
        analyse_ratio <= RSS_BAR,
        f"--mmap analyse peak RSS {analyse_ratio:.2f}x dense (bar {RSS_BAR})",
    )
    _soft_gate(
        build["streamed"]["seconds"] <= WALL_BUDGET["build"],
        f"cold streamed build took {build['streamed']['seconds']:.0f}s "
        f"(budget {WALL_BUDGET['build']:.0f}s)",
    )
    _soft_gate(
        sweep["mmap"]["seconds"] <= WALL_BUDGET["sweep"],
        f"scored --mmap sweep took {sweep['mmap']['seconds']:.0f}s "
        f"(budget {WALL_BUDGET['sweep']:.0f}s)",
    )
    _soft_gate(
        analyse["mmap"]["seconds"] <= WALL_BUDGET["analyse"],
        f"--mmap analyse took {analyse['mmap']['seconds']:.0f}s "
        f"(budget {WALL_BUDGET['analyse']:.0f}s)",
    )
    _soft_gate(
        cond["speedup"] >= SPEEDUP_BAR,
        f"streamed cluster_conductances only {cond['speedup']:.1f}x the "
        f"legacy loop at n={cond['n']:,}, k={cond['k']} (bar {SPEEDUP_BAR})",
    )

    rows = [
        [
            "build streamed", round(build["streamed"]["peak_rss"] / 1e6, 1),
            round(build["streamed"]["seconds"], 2),
            f"{build_ratio:.2f}x RSS, io {spill_io['read_amplification']:.2f}x",
        ],
        [
            "build materialising",
            round(build["materialising"]["peak_rss"] / 1e6, 1),
            round(build["materialising"]["seconds"], 2), "",
        ],
        [
            "sweep --mmap --structural", round(sweep["mmap"]["peak_rss"] / 1e6, 1),
            round(sweep["mmap"]["seconds"], 2), f"{sweep_ratio:.2f}x RSS",
        ],
        [
            "sweep dense", round(sweep["dense"]["peak_rss"] / 1e6, 1),
            round(sweep["dense"]["seconds"], 2), "",
        ],
        [
            "analyse --mmap", round(analyse["mmap"]["peak_rss"] / 1e6, 1),
            round(analyse["mmap"]["seconds"], 2), f"{analyse_ratio:.2f}x RSS",
        ],
        [
            "cluster_conductances streamed", "",
            round(cond["streamed_seconds"], 4), f"{cond['speedup']:.1f}x legacy",
        ],
    ]
    table = print_table(
        f"E22: scale regime, build n = {N_BUILD:,} / sweep n = {SWEEP_N:,} "
        f"(bars: RSS {RSS_BAR}, spill io {SPILL_READ_BAR}, "
        f"speedup {SPEEDUP_BAR})",
        ["stage", "peak RSS MB", "seconds", "gates"],
        rows,
    )

    benchmark.extra_info["table"] = table
    benchmark.extra_info["build"] = {
        "n": N_BUILD,
        "materialising_peak_rss": build["materialising"]["peak_rss"],
        "streamed_peak_rss": build["streamed"]["peak_rss"],
        "ratio": build_ratio,
        "seconds": build["streamed"]["seconds"],
        "spill_io": dict(spill_io, bar=SPILL_READ_BAR),
        "entry_bytes": results["entry_bytes"],
        "num_edges": build["streamed"]["num_edges"],
    }
    benchmark.extra_info["sweep"] = {
        "n": SWEEP_N,
        "trials": SWEEP_TRIALS,
        "dense_peak_rss": sweep["dense"]["peak_rss"],
        "mmap_peak_rss": sweep["mmap"]["peak_rss"],
        "ratio": sweep_ratio,
        "seconds": sweep["mmap"]["seconds"],
    }
    benchmark.extra_info["analyse"] = {
        "dense_peak_rss": analyse["dense"]["peak_rss"],
        "mmap_peak_rss": analyse["mmap"]["peak_rss"],
        "ratio": analyse_ratio,
        "seconds": analyse["mmap"]["seconds"],
    }
    benchmark.extra_info["conductance"] = cond
    benchmark.extra_info["budgets"] = dict(WALL_BUDGET, rss_bar=RSS_BAR)
