"""E15 — instance-generation throughput of the array-native pipeline.

PR 1 made the *algorithm* ~75x faster, which moved the scaling bottleneck to
instance *generation*: the seed generators sampled dense O(size²) Bernoulli
masks per block and funnelled Python tuple lists into ``Graph.__init__``.
This benchmark records, for sparse SBM instances with k = 4 clusters and
expected degree Θ(log n):

* ``gen_seconds`` — time to build the :class:`ClusteredGraph` with the
  array-native sparse-regime pipeline (Binomial edge counts + distinct pair
  sampling + ``Graph.from_edge_array``),
* ``edges_per_second`` — generation throughput comparable across sizes,
* ``e2e_seconds`` — generation plus a T = 10 round run of the distributed
  driver on the vectorized backend (β fixed so no eigensolver runs), i.e.
  the full experiment loop an evaluation sweep pays per instance, and
* ``legacy_gen_seconds`` — the seed's dense-mask/tuple-list generation path
  (reproduced below verbatim) at the comparison size, giving the speedup the
  refactor is accountable for.

The acceptance bar of the refactor: at n = 10⁵ the array-native generator
must be ≥ 20x faster than the seed path, and n = 10⁶ must build (connected)
in seconds rather than the hours the dense path would need.

PR 6 adds a second comparison for the **LFR** generator: its two-stage
budget-proportional endpoint draws moved from inverse-CDF sampling
(``Generator.choice(p=...)`` and ``searchsorted`` against a global
cumulative sum — O(log n) per endpoint, with the CDF rebuilt per batch)
onto Walker alias tables (:class:`repro.graphs.sampling.AliasTable` /
:class:`~repro.graphs.sampling.SegmentedAliasTable` — O(k) build, O(1) per
draw).  The pre-alias samplers are reproduced below verbatim and patched
into :mod:`repro.graphs.lfr` for a full legacy generation run, so
``lfr_speedup`` compares complete end-to-end generations of the same
instance family; the bar is ≥ 2x at the comparison size.

``BENCH_SMOKE=1`` (CI) trims the sweep to n = 10⁴ and, as with E14, records
the speedups without hard gates — shared-runner timing is too noisy.
"""

from __future__ import annotations

import contextlib
import os
import time

import numpy as np

import repro.graphs.lfr as lfr_mod
from repro.core import AlgorithmParameters, DistributedClustering
from repro.graphs import Graph, lfr_benchmark, planted_partition
from repro.graphs.sampling import _sorted_unique

from _utils import print_table

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")
ROUNDS = 10
BETA = 0.125  # 1/(2k) for k = 4
K = 4
SPEEDUP_BAR = 20.0
LFR_SPEEDUP_BAR = 2.0


def _probabilities(n: int) -> tuple[float, float]:
    """Sparse-regime SBM probabilities: expected degree Θ(log n)."""
    cluster = n // K
    p_in = 2.0 * np.log(n) / cluster  # expected internal degree ~ 2 ln n
    p_out = 2.0 / (n - cluster)  # expected external degree ~ 2
    return p_in, p_out


def _legacy_sbm_edges(
    sizes: list[int], p_in: float, p_out: float, rng: np.random.Generator
) -> list[tuple[int, int]]:
    """The seed generator's dense sampling path, kept for comparison.

    Per-block dense Bernoulli masks (O(size²) time and memory) feeding a
    Python tuple list — this is what ``stochastic_block_model`` did before
    the array-native rewrite.
    """
    k = len(sizes)
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    edges: list[tuple[int, int]] = []
    for c in range(k):
        lo, hi = offsets[c], offsets[c + 1]
        size = hi - lo
        if size >= 2:
            iu = np.triu_indices(size, k=1)
            mask = rng.random(iu[0].size) < p_in
            edges.extend(zip((iu[0][mask] + lo).tolist(), (iu[1][mask] + lo).tolist()))
    if p_out > 0:
        for a in range(k):
            for b in range(a + 1, k):
                rows = np.arange(offsets[a], offsets[a + 1])
                cols = np.arange(offsets[b], offsets[b + 1])
                mask = rng.random((rows.size, cols.size)) < p_out
                ri, ci = np.nonzero(mask)
                edges.extend(zip(rows[ri].tolist(), cols[ci].tolist()))
    return edges


def _time_legacy(n: int) -> float:
    p_in, p_out = _probabilities(n)
    sizes = [n // K] * K
    rng = np.random.default_rng(n)
    start = time.perf_counter()
    edges = _legacy_sbm_edges(sizes, p_in, p_out, rng)
    Graph(sum(sizes), edges, name="legacy-sbm")
    return time.perf_counter() - start


def _legacy_sample_weighted_pairs(
    members, probs, target, n, rng, *, forbidden_labels=None
):
    """The pre-alias cross-community sampler: ``Generator.choice(p=...)``
    endpoint draws, which rebuild and binary-search a CDF on every batch.
    Draw mechanics kept verbatim; only the return value is adapted to the
    fused-key chunk protocol the attempt iterator now expects."""
    if target <= 0 or members.size < 2:
        return np.empty(0, dtype=np.int64)
    have = np.empty(0, dtype=np.int64)
    for _ in range(8):
        need = target - have.size
        if need <= 0:
            break
        draw = 2 * need + 16
        cu = members[rng.choice(members.size, size=draw, p=probs)]
        cv = members[rng.choice(members.size, size=draw, p=probs)]
        ok = cu != cv
        if forbidden_labels is not None:
            ok &= forbidden_labels[cu] != forbidden_labels[cv]
        cu, cv = cu[ok], cv[ok]
        keys = np.minimum(cu, cv) * n + np.maximum(cu, cv)
        have = _sorted_unique(np.concatenate([have, keys]))
    if have.size > target:
        have = np.delete(
            have, rng.choice(have.size, size=have.size - target, replace=False)
        )
    return have


def _legacy_sample_same_label_pairs(weights, labels, target_c, n, rng):
    """The pre-alias per-community sampler: both endpoints drawn by
    ``searchsorted`` against one shared cumulative sum over the
    community-sorted weights.  Draw mechanics kept verbatim; only the
    return value is adapted to the fused-key chunk protocol."""
    num_labels = int(target_c.size)
    total_target = int(target_c.sum())
    if total_target <= 0:
        return np.empty(0, dtype=np.int64)
    order = np.argsort(labels, kind="stable")
    w_sorted = weights[order].astype(np.float64)
    cum = np.cumsum(w_sorted)
    total = float(cum[-1]) if cum.size else 0.0
    if total <= 0:
        return np.empty((0, 2), dtype=np.int64)
    counts = np.bincount(labels, minlength=num_labels)
    starts = np.zeros(num_labels + 1, dtype=np.int64)
    starts[1:] = np.cumsum(counts)
    cum0 = np.concatenate([[0.0], cum])
    base = cum0[starts[:-1]]
    tot_c = cum0[starts[1:]] - base
    have = np.empty(0, dtype=np.int64)
    for _ in range(8):
        have_c = np.bincount(labels[have // n], minlength=num_labels)
        need = int(np.maximum(target_c - have_c, 0).sum())
        if need <= 0:
            break
        draw = 2 * need + 16
        iu = np.searchsorted(cum, rng.random(draw) * total, side="right")
        iu = np.minimum(iu, cum.size - 1)
        cu = order[iu]
        c = labels[cu]
        iv = np.searchsorted(cum, base[c] + rng.random(draw) * tot_c[c], side="right")
        iv = np.clip(iv, starts[c], starts[c + 1] - 1)
        cv = order[iv]
        ok = cu != cv
        cu, cv = cu[ok], cv[ok]
        keys = np.minimum(cu, cv) * n + np.maximum(cu, cv)
        have = _sorted_unique(np.concatenate([have, keys]))
        cc = labels[have // n]
        perm = np.lexsort((rng.random(have.size), cc))
        cc_perm = cc[perm]
        group_start = np.searchsorted(cc_perm, np.arange(num_labels))
        rank = np.arange(have.size) - group_start[cc_perm]
        have = np.sort(have[perm[rank < target_c[cc_perm]]])
    return have


@contextlib.contextmanager
def _legacy_lfr_samplers():
    """Swap the pre-alias endpoint samplers into :mod:`repro.graphs.lfr`.

    The alias-table refactor touched only these two module globals, so
    patching them reproduces the complete legacy generation path — the
    comparison times two full ``lfr_benchmark`` runs, not a microbenchmark.
    """
    originals = (lfr_mod._sample_weighted_pairs, lfr_mod._sample_same_label_pairs)
    lfr_mod._sample_weighted_pairs = _legacy_sample_weighted_pairs
    lfr_mod._sample_same_label_pairs = _legacy_sample_same_label_pairs
    try:
        yield
    finally:
        lfr_mod._sample_weighted_pairs, lfr_mod._sample_same_label_pairs = originals


def _time_lfr(n: int) -> float:
    start = time.perf_counter()
    lfr_benchmark(n, mu=0.1, average_degree=10, seed=n, ensure_connected=False)
    return time.perf_counter() - start


def _run_end_to_end(instance) -> float:
    params = AlgorithmParameters.from_values(instance.graph.n, BETA, ROUNDS)
    start = time.perf_counter()
    DistributedClustering(instance.graph, params, seed=7, backend="vectorized").run()
    return time.perf_counter() - start


def test_e15_generation_throughput(benchmark):
    sizes = (10_000,) if SMOKE else (10_000, 100_000, 1_000_000)
    compare_at = 10_000 if SMOKE else 100_000

    rows = []
    records = []
    for n in sizes:
        p_in, p_out = _probabilities(n)
        start = time.perf_counter()
        instance = planted_partition(n, K, p_in, p_out, seed=n, ensure_connected=True)
        gen_seconds = time.perf_counter() - start
        e2e_seconds = gen_seconds + _run_end_to_end(instance)
        m = instance.graph.num_edges
        records.append(
            {
                "n": n,
                "edges": m,
                "gen_seconds": gen_seconds,
                "edges_per_second": m / gen_seconds,
                "e2e_seconds": e2e_seconds,
            }
        )
        rows.append(
            [
                n,
                m,
                round(gen_seconds, 3),
                int(m / gen_seconds),
                round(e2e_seconds, 3),
            ]
        )

    legacy_seconds = _time_legacy(compare_at)
    new_seconds = next(r["gen_seconds"] for r in records if r["n"] == compare_at)
    speedup = legacy_seconds / new_seconds

    # LFR generation: alias-table endpoint draws vs the pre-alias
    # inverse-CDF samplers, full end-to-end runs of the same family.
    lfr_at = 10_000 if SMOKE else 1_000_000
    with _legacy_lfr_samplers():
        lfr_legacy_seconds = _time_lfr(lfr_at)
    lfr_seconds = _time_lfr(lfr_at)
    lfr_speedup = lfr_legacy_seconds / lfr_seconds

    table = print_table(
        "E15: array-native instance generation (SBM, k = 4, degree Θ(log n))",
        ["n", "edges", "gen s", "edges/s", "gen+run s"],
        rows,
    )
    extra = print_table(
        f"E15: seed (dense-mask) generator vs array-native at n = {compare_at}",
        ["legacy s", "array-native s", "speedup"],
        [[round(legacy_seconds, 3), round(new_seconds, 4), round(speedup, 1)]],
    )
    lfr_table = print_table(
        f"E15: LFR generation, inverse-CDF vs alias-table draws at n = {lfr_at}",
        ["inverse-CDF s", "alias s", "speedup"],
        [[round(lfr_legacy_seconds, 3), round(lfr_seconds, 3), round(lfr_speedup, 1)]],
    )
    benchmark.extra_info["table"] = table + "\n" + extra + "\n" + lfr_table
    benchmark.extra_info["records"] = records
    benchmark.extra_info["legacy_seconds"] = legacy_seconds
    benchmark.extra_info["generation_speedup"] = speedup
    benchmark.extra_info["lfr"] = {
        "n": lfr_at,
        "legacy_seconds": lfr_legacy_seconds,
        "alias_seconds": lfr_seconds,
        "speedup": lfr_speedup,
    }

    # Timed target for the pytest-benchmark JSON: regenerating the largest
    # instance (the configuration this refactor exists for).
    largest = max(sizes)
    p_in, p_out = _probabilities(largest)
    benchmark.pedantic(
        lambda: planted_partition(largest, K, p_in, p_out, seed=largest),
        rounds=1,
        iterations=1,
    )

    # The n = 10⁶ instance must be buildable interactively ("in seconds").
    if not SMOKE:
        assert max(r["gen_seconds"] for r in records) < 60.0

    if SMOKE:
        # Shared CI runners: record the measurements, warn instead of gating.
        import warnings

        if speedup < SPEEDUP_BAR:
            warnings.warn(
                f"smoke generation speedup {speedup:.1f}x below the informal "
                f"{SPEEDUP_BAR}x bar (timing noise on shared runners is expected)",
                stacklevel=1,
            )
        if lfr_speedup < LFR_SPEEDUP_BAR:
            warnings.warn(
                f"smoke LFR alias-sampling speedup {lfr_speedup:.1f}x below the "
                f"informal {LFR_SPEEDUP_BAR}x bar (timing noise expected)",
                stacklevel=1,
            )
    else:
        assert speedup >= SPEEDUP_BAR, (
            f"array-native generator speedup {speedup:.1f}x below the "
            f"{SPEEDUP_BAR}x bar at n = {compare_at}"
        )
        assert lfr_speedup >= LFR_SPEEDUP_BAR, (
            f"LFR alias-sampling speedup {lfr_speedup:.1f}x below the "
            f"{LFR_SPEEDUP_BAR}x bar at n = {lfr_at}"
        )
