"""E17 — out-of-core instances: peak RSS and throughput, mmap vs dense.

PR 4 made the CSR adjacency storage pluggable: a graph can hold its indices
as in-RAM arrays (``DenseStorage``, the historical behaviour) or as
row-chunked memory-mapped shards (``MmapStorage``) that the OS pages in on
demand, with the vectorized engine walking rows in blocks so a round's
resident set is O(block) rather than O(m).  This benchmark records the two
numbers that substrate is accountable for, each measured in a **fresh
subprocess** (peak RSS is a per-process high-water mark):

* ``peak_rss`` — dense path (npz cache entry loaded into RAM, unblocked
  rounds, default batching) vs out-of-core path (sharded entry served
  memory-mapped, shard-aligned blocked rounds, small matching batches).
  The gate: **mmap peak RSS ≤ 0.5× dense** at n = 10⁶.
* ``labels_crc`` — the final clustering of both runs, asserted
  **bit-identical in every mode**: where the adjacency lives and how rounds
  touch it must never change a result.

A third section ties the substrate to the sweep layer at reduced size:
``run_trials`` records from memory-mapped instances fanned across worker
processes (instances ship by path, workers share adjacency pages) are
asserted equal to the dense serial records — the `repro sweep --mmap
--workers N` contract.

``BENCH_SMOKE=1`` (CI) trims n to 10⁵ and — as with E13–E16 — records the
RSS measurements but only *warns* on the ratio bar: a shared runner's
baseline interpreter RSS dominates at small n.
"""

from __future__ import annotations

import os
import tempfile
import warnings

from repro.evaluation import evaluate_load_balancing_clustering, run_trials
from repro.graphs import cached_instance

from _utils import print_table, run_measured_subprocess

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

N = 100_000 if SMOKE else 1_000_000
K = 4
# β sets the seed-trial count s̄ and thereby the (n, s) load matrix, which
# both configurations hold identically in RAM (it is algorithm state, not
# adjacency).  β = 0.5 keeps s̄ small (~5 columns, 40 MB at n = 10⁶) so the
# measurement exposes the adjacency term the storage substrate is
# accountable for, instead of an identical-on-both-sides load matrix.
BETA = 0.5
ROUNDS = 30  # fixed round budget: E17 measures memory, not convergence
RSS_BAR = 0.5  # mmap peak RSS must be <= this fraction of dense, full mode

# Sweep-parity workload (runs in-process, so it stays small in both modes).
SWEEP_N = 20_000 if SMOKE else 50_000
SWEEP_TRIALS = 2
SWEEP_WORKERS = 2


def _probabilities(n: int) -> tuple[float, float]:
    import numpy as np

    cluster = n // K
    return float(2.0 * np.log(n) / cluster), float(2.0 / (n - cluster))


_CHILD_TEMPLATE = """
import json, time, zlib
from repro.core import AlgorithmParameters
from repro.core.engines import VectorizedEngine, build_clustering_result
from repro.graphs import cached_instance
from _utils import peak_rss_bytes

inst = cached_instance(
    "planted_partition", seed={seed}, cache_dir={cache_dir!r}, mmap={mmap},
    n={n}, k={k}, p_in={p_in!r}, p_out={p_out!r}, ensure_connected=True,
)
params = AlgorithmParameters.from_values({n}, {beta!r}, {rounds})
start = time.perf_counter()
engine = VectorizedEngine(inst.graph, params, seed=17, batch_rounds={batch_rounds})
result = build_clustering_result(engine.run(), params)
elapsed = time.perf_counter() - start
print(json.dumps({{
    "peak_rss": peak_rss_bytes(),
    "labels_crc": zlib.crc32(result.labels.tobytes()),
    "num_seeds": int(result.num_seeds),
    "seconds": elapsed,
}}))
"""


def _measure(cache_dir: str, *, mmap: bool, batch_rounds: int) -> dict:
    p_in, p_out = _probabilities(N)
    code = _CHILD_TEMPLATE.format(
        seed=N,
        cache_dir=cache_dir,
        mmap=mmap,
        n=N,
        k=K,
        p_in=p_in,
        p_out=p_out,
        beta=BETA,
        rounds=ROUNDS,
        batch_rounds=batch_rounds,
    )
    return run_measured_subprocess(code)


def _sweep_records(instances, *, executor="serial", workers=None):
    algorithms = {
        "ours": evaluate_load_balancing_clustering(backend="vectorized", rounds=20)
    }
    result = run_trials(
        instances,
        algorithms,
        trials=SWEEP_TRIALS,
        base_seed=17,
        executor=executor,
        workers=workers,
    )
    return [(r.config, r.trial, r.values) for r in result.records]


def test_e17_outofcore(benchmark):
    p_in, p_out = _probabilities(N)
    spec = dict(n=N, k=K, p_in=p_in, p_out=p_out, ensure_connected=True)

    with tempfile.TemporaryDirectory() as cache_dir:
        # Warm both cache formats once, in a subprocess: generation is
        # E15's business (E17 measures the serving paths), and keeping the
        # n = 10⁶ build out of this process means the measuring parent
        # never holds the instance itself.
        warm = (
            "import json\n"
            "from repro.graphs import cached_instance\n"
            f"spec = dict(n={N}, k={K}, p_in={p_in!r}, p_out={p_out!r}, "
            "ensure_connected=True)\n"
            f"cached_instance('planted_partition', seed={N}, "
            f"cache_dir={cache_dir!r}, **spec)\n"
            f"cached_instance('planted_partition', seed={N}, "
            f"cache_dir={cache_dir!r}, mmap=True, **spec)\n"
            "print(json.dumps({}))\n"
        )
        run_measured_subprocess(warm)

        # --- peak RSS + throughput, one fresh subprocess per configuration #
        dense = _measure(cache_dir, mmap=False, batch_rounds=32)
        mapped: dict = {}

        # The out-of-core run is the timed target for the benchmark JSON.
        # batch_rounds=2 is the out-of-core configuration's natural setting:
        # the pre-generated matching batch is O(batch · n) and would
        # otherwise dominate the bounded working set.
        benchmark.pedantic(
            lambda: mapped.update(_measure(cache_dir, mmap=True, batch_rounds=2)),
            rounds=1,
            iterations=1,
        )

    # Correctness gate (all modes): the storage backend and the blocked
    # round loop must not change a single bit of the result.
    assert mapped["labels_crc"] == dense["labels_crc"], (
        "mmap + blocked execution changed the clustering: "
        f"crc {mapped['labels_crc']:#x} != {dense['labels_crc']:#x}"
    )
    assert mapped["num_seeds"] == dense["num_seeds"]

    rss_ratio = mapped["peak_rss"] / dense["peak_rss"]
    rows = [
        [
            "dense (npz, unblocked)",
            round(dense["peak_rss"] / 1e6, 1),
            round(dense["seconds"], 2),
            round(ROUNDS / dense["seconds"], 1),
        ],
        [
            "mmap (sharded, blocked)",
            round(mapped["peak_rss"] / 1e6, 1),
            round(mapped["seconds"], 2),
            round(ROUNDS / mapped["seconds"], 1),
        ],
    ]
    table = print_table(
        f"E17: out-of-core substrate, SBM n = {N:,} "
        f"(RSS ratio {rss_ratio:.2f}, bar {RSS_BAR})",
        ["configuration", "peak RSS MB", "seconds", "rounds/s"],
        rows,
    )

    # --- sweep-layer parity: mmap instances across processes ------------- #
    sp_in, sp_out = _probabilities(SWEEP_N)
    with tempfile.TemporaryDirectory() as sweep_cache:
        sweep_spec = dict(
            n=SWEEP_N, k=K, p_in=sp_in, p_out=sp_out, ensure_connected=True
        )
        dense_inst = cached_instance(
            "planted_partition", seed=SWEEP_N, cache_dir=sweep_cache, **sweep_spec
        )
        mmap_inst = cached_instance(
            "planted_partition", seed=SWEEP_N, cache_dir=sweep_cache, mmap=True,
            **sweep_spec,
        )
        serial_dense = _sweep_records([({"n": SWEEP_N}, dense_inst)])
        parallel_mmap = _sweep_records(
            [({"n": SWEEP_N}, mmap_inst)], executor="process", workers=SWEEP_WORKERS
        )
    assert parallel_mmap == serial_dense, (
        "mmap instances fanned across processes changed the sweep records"
    )

    benchmark.extra_info["table"] = table
    benchmark.extra_info["rss"] = {
        "n": N,
        "dense_peak_rss": dense["peak_rss"],
        "mmap_peak_rss": mapped["peak_rss"],
        "ratio": rss_ratio,
        "bar": RSS_BAR,
    }
    benchmark.extra_info["seconds"] = {
        "dense": dense["seconds"],
        "mmap": mapped["seconds"],
    }

    if SMOKE:
        # At n = 10⁵ the interpreter baseline (~100 MB of numpy/scipy)
        # dominates both measurements; record, warn, don't gate.
        if rss_ratio > RSS_BAR:
            warnings.warn(
                f"mmap/dense peak-RSS ratio {rss_ratio:.2f} above the {RSS_BAR} "
                f"bar at smoke size n={N:,} (interpreter baseline dominates; "
                "the gate applies at n=10^6 in full mode)",
                stacklevel=1,
            )
    else:
        assert rss_ratio <= RSS_BAR, (
            f"mmap sweep peak RSS is {rss_ratio:.2f}x dense (bar {RSS_BAR}): "
            f"{mapped['peak_rss'] / 1e6:.0f} MB vs {dense['peak_rss'] / 1e6:.0f} MB"
        )
