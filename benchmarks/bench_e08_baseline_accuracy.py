"""E8 — accuracy against the related-work baselines (Section 1.3).

Workload: planted-partition graphs with a sweep of the inter-cluster edge
probability q (harder as q grows).  We compare the paper's algorithm with
centralised spectral clustering, the Becchetti et al. averaging dynamics,
Kempe–McSherry decentralised spectral, label propagation, the multilevel
partitioner and PageRank–Nibble local clustering, all on the same instances.

Expected shape (recorded in EXPERIMENTS.md): on well-clustered inputs the
paper's algorithm matches the centralised methods; as q grows the gap Υ
shrinks and all methods degrade, with the local/1-shot heuristics degrading
first.
"""

from __future__ import annotations

from repro.baselines import (
    AveragingDynamics,
    DecentralizedOrthogonalIteration,
    LabelPropagation,
    LocalClustering,
    MultilevelPartitioner,
    SpectralClustering,
)
from repro.evaluation import (
    evaluate_baseline,
    evaluate_load_balancing_clustering,
    run_trials,
    sweep,
)
from repro.graphs import planted_partition

from _utils import bench_instance, run_experiment

N, K, P_IN = 240, 3, 0.30
Q_VALUES = (0.01, 0.04)
TRIALS = 3


def _experiment() -> dict:
    instances = list(
        sweep(
            Q_VALUES,
            lambda q: bench_instance(
                planted_partition, n=N, k=K, p_in=P_IN, p_out=q,
                ensure_connected=True, seed=int(q * 10_000),
            ),
            key="q",
        )
    )
    algorithms = {
        "load-balancing (ours)": evaluate_load_balancing_clustering(),
        "spectral": evaluate_baseline(SpectralClustering()),
        "averaging-dynamics": evaluate_baseline(AveragingDynamics()),
        "kempe-mcsherry": evaluate_baseline(
            DecentralizedOrthogonalIteration(exact_aggregation=True)
        ),
        "label-propagation": evaluate_baseline(LabelPropagation()),
        "multilevel": evaluate_baseline(MultilevelPartitioner()),
        "local-ppr": evaluate_baseline(LocalClustering()),
    }
    result = run_trials(instances, algorithms, trials=TRIALS, base_seed=5)
    aggregated = result.aggregated(["q", "algorithm"])
    columns = ["q", "algorithm", "error", "ari", "nmi", "rounds"]
    rows = [[row.get(c, "") for c in columns] for row in sorted(aggregated, key=lambda r: (r["q"], r["algorithm"]))]
    ours = {row["q"]: row["error"] for row in aggregated if row["algorithm"] == "load-balancing (ours)"}
    spectral = {row["q"]: row["error"] for row in aggregated if row["algorithm"] == "spectral"}
    return {"columns": columns, "rows": rows, "ours": ours, "spectral": spectral}


def test_e08_baseline_accuracy(benchmark):
    result = run_experiment(
        benchmark, _experiment, title=f"E8: accuracy vs baselines (planted partition, n={N}, k={K})"
    )
    ours, spectral = result["ours"], result["spectral"]
    # On the easy instance the paper's algorithm is competitive with
    # centralised spectral clustering: within ~12 percentage points at this
    # finite size (the o(n) guarantee leaves a non-trivial constant-factor
    # slack at n = 240, dominated by seeding variance and threshold margins).
    easy_q = min(ours)
    assert ours[easy_q] <= spectral[easy_q] + 0.12
    assert ours[easy_q] <= 0.12
