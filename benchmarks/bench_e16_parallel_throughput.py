"""E16 — parallel sweep throughput and instance-cache load times.

PR 2 left the experiment layer as the last sequential stage of the stack:
instances build in O(m) and rounds execute as array operations, but
``run_trials`` still walked the (instance, algorithm, trial) grid one cell
at a time and every sweep regenerated its instances from scratch.  This
benchmark records the two numbers the parallel-execution layer is
accountable for:

* ``speedup@w`` — wall-clock speedup of ``run_trials(executor="process",
  workers=w)`` over the serial executor on a bench_e13-style
  cycle-of-cliques sweep, for w ∈ {2, 4, 8}.  Trials are embarrassingly
  parallel (stable crc32 trial seeds, no shared state), so on an
  unloaded ≥ 8-core machine the speedup at 8 workers must be ≥ 3x.  The
  records themselves are asserted **bit-identical** to the sequential
  path in every mode — parallelism must never change a result.
* ``cold_seconds`` / ``warm_seconds`` — time to generate an n = 10⁶
  (smoke: 10⁵) SBM instance versus re-loading it from the npz CSR cache
  (:mod:`repro.graphs.cache`); the warm load must be ≥ 10x faster.

``BENCH_SMOKE=1`` (CI) trims the sweep, caps the worker ladder at 2 and —
as with E14/E15 — records the measurements but only *warns* on the speedup
bars: shared runners have neither guaranteed cores nor stable disks.
"""

from __future__ import annotations

import os
import tempfile
import time
import warnings
from pathlib import Path

from repro.evaluation import (
    evaluate_load_balancing_clustering,
    run_trials,
    sweep,
)
from repro.graphs import cached_instance, cycle_of_cliques, instance_cache_path

from _utils import print_table, thread_ladder

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

# Parallel sweep workload: cycle-of-cliques sizes as in E13, enough trials
# that the grid comfortably outnumbers the workers.  The worker ladder comes
# from the shared helper (BENCH_MAX_THREADS / core-count aware); smoke mode
# keeps its historical single rung of 2 workers.
CLIQUE_SIZES = (10, 20) if SMOKE else (20, 40, 80)
TRIALS = 2 if SMOKE else 6
WORKER_LADDER = thread_ladder(2 if SMOKE else 8, minimum=2)
SPEEDUP_BAR = 3.0  # at 8 workers, full mode

# Cache workload: sparse SBM at the scale the cache exists for.
CACHE_N = 100_000 if SMOKE else 1_000_000
CACHE_K = 4
WARM_BAR = 10.0


def _sweep_instances():
    return list(
        sweep(
            CLIQUE_SIZES,
            lambda s: cycle_of_cliques(8, s, seed=s),
            key="clique_size",
        )
    )


def _records(result):
    return [(r.config, r.trial, r.values) for r in result.records]


def _cache_probabilities(n: int) -> tuple[float, float]:
    import numpy as np

    cluster = n // CACHE_K
    return 2.0 * np.log(n) / cluster, 2.0 / (n - cluster)


def test_e16_parallel_throughput(benchmark):
    instances = _sweep_instances()
    algorithms = {"load-balancing (ours)": evaluate_load_balancing_clustering()}

    # --- parallel executor: wall clock + bit-identical records ---------- #
    start = time.perf_counter()
    serial = run_trials(instances, algorithms, trials=TRIALS, base_seed=16)
    serial_seconds = time.perf_counter() - start

    rows = [["serial", 1, round(serial_seconds, 3), 1.0]]
    speedups: dict[int, float] = {}
    for workers in WORKER_LADDER:
        start = time.perf_counter()
        parallel = run_trials(
            instances,
            algorithms,
            trials=TRIALS,
            base_seed=16,
            executor="process",
            workers=workers,
        )
        elapsed = time.perf_counter() - start
        # Correctness gate (all modes): parallel records == serial records.
        assert _records(parallel) == _records(serial), (
            f"process executor with {workers} workers changed the records"
        )
        speedups[workers] = serial_seconds / elapsed
        rows.append(["process", workers, round(elapsed, 3), round(speedups[workers], 2)])

    table = print_table(
        f"E16: sweep wall-clock vs workers (cycle-of-cliques, {TRIALS} trials)",
        ["executor", "workers", "seconds", "speedup"],
        rows,
    )

    # --- instance cache: cold generation vs warm npz load --------------- #
    p_in, p_out = _cache_probabilities(CACHE_N)
    with tempfile.TemporaryDirectory() as cache_dir:
        spec = dict(
            n=CACHE_N, k=CACHE_K, p_in=p_in, p_out=p_out, ensure_connected=True
        )
        start = time.perf_counter()
        cold_instance = cached_instance(
            "planted_partition", seed=CACHE_N, cache_dir=cache_dir, **spec
        )
        cold_seconds = time.perf_counter() - start
        npz_path = instance_cache_path(cache_dir, "planted_partition", spec, CACHE_N)
        assert npz_path.exists()
        start = time.perf_counter()
        warm_instance = cached_instance(
            "planted_partition", seed=CACHE_N, cache_dir=cache_dir, **spec
        )
        warm_seconds = time.perf_counter() - start
        assert warm_instance.graph == cold_instance.graph
        npz_mb = npz_path.stat().st_size / 1e6
    warm_speedup = cold_seconds / warm_seconds

    cache_table = print_table(
        f"E16: instance cache, SBM n = {CACHE_N:,} (npz {npz_mb:.0f} MB)",
        ["cold gen s", "warm load s", "speedup"],
        [[round(cold_seconds, 2), round(warm_seconds, 3), round(warm_speedup, 1)]],
    )

    benchmark.extra_info["table"] = table + "\n" + cache_table
    benchmark.extra_info["serial_seconds"] = serial_seconds
    benchmark.extra_info["speedups"] = {str(w): s for w, s in speedups.items()}
    benchmark.extra_info["cache"] = {
        "n": CACHE_N,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "warm_speedup": warm_speedup,
        "npz_mb": npz_mb,
    }

    # Timed target for the pytest-benchmark JSON: the widest parallel run.
    top_workers = max(WORKER_LADDER)
    benchmark.pedantic(
        lambda: run_trials(
            instances,
            algorithms,
            trials=TRIALS,
            base_seed=16,
            executor="process",
            workers=top_workers,
        ),
        rounds=1,
        iterations=1,
    )

    if SMOKE or top_workers < 8:
        # Shared/small runners (thread_ladder clamps to the core count):
        # record the measurements, warn instead of gating — there may simply
        # be no cores to parallelise over.
        if speedups[top_workers] < SPEEDUP_BAR:
            warnings.warn(
                f"parallel speedup {speedups[top_workers]:.2f}x at "
                f"{top_workers} workers below the {SPEEDUP_BAR}x bar "
                f"({os.cpu_count()} cpu(s) available; timing noise expected)",
                stacklevel=1,
            )
        if warm_speedup < WARM_BAR:
            warnings.warn(
                f"warm cache load {warm_speedup:.1f}x below the {WARM_BAR}x bar "
                "(shared-runner disk noise expected)",
                stacklevel=1,
            )
    else:
        assert speedups[top_workers] >= SPEEDUP_BAR, (
            f"parallel speedup {speedups[top_workers]:.2f}x at "
            f"{top_workers} workers below {SPEEDUP_BAR}x"
        )
        assert warm_speedup >= WARM_BAR, (
            f"warm cache load only {warm_speedup:.1f}x faster than cold generation"
        )
