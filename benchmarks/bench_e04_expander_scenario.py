"""E4 — the Section 1.2 scenario: k = Θ(1) expander clusters.

Workload: rings of random-regular expanders with constant k = 3, growing n.
The paper claims that for this family the algorithm finishes in O(log n)
rounds with message complexity O(n log n).  We run the distributed
implementation at the prescribed T and report rounds / log n and
words / (n log n); both ratios should stay bounded as n grows.
"""

from __future__ import annotations

import numpy as np

from repro.core import AlgorithmParameters, DistributedClustering
from repro.graphs import ring_of_expanders

from _utils import bench_instance, run_experiment


def _experiment() -> dict:
    rows = []
    for cluster_size in (20, 30, 45):
        instance = bench_instance(ring_of_expanders, k=3, cluster_size=cluster_size, d=8, seed=cluster_size)
        graph, truth = instance.graph, instance.partition
        params = AlgorithmParameters.from_instance(graph, truth)
        result = DistributedClustering(graph, params, seed=9).run()
        log_n = np.log(graph.n)
        rows.append(
            [
                graph.n,
                params.rounds,
                round(params.rounds / log_n, 2),
                result.total_words(),
                round(result.total_words() / (graph.n * log_n), 2),
                round(result.error_against(truth), 3),
            ]
        )
    round_ratios = [row[2] for row in rows]
    word_ratios = [row[4] for row in rows]
    return {
        "columns": ["n", "T", "T / log n", "words", "words / (n log n)", "error"],
        "rows": rows,
        "round_ratio_spread": float(max(round_ratios) / min(round_ratios)),
        "word_ratio_spread": float(max(word_ratios) / min(word_ratios)),
    }


def test_e04_expander_scenario(benchmark):
    result = run_experiment(
        benchmark,
        _experiment,
        title="E4: k=Θ(1) expander clusters — O(log n) rounds, O(n log n) words (Section 1.2)",
    )
    # Θ(·) claims: the normalised ratios should stay within a constant band.
    assert result["round_ratio_spread"] <= 4.0
    assert result["word_ratio_spread"] <= 4.0
    for row in result["rows"]:
        assert row[5] <= 0.15, "accuracy should stay high across the sweep"
