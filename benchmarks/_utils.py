"""Shared helpers for the benchmark harness.

Every benchmark file regenerates one experiment of EXPERIMENTS.md: it builds
the workload, runs the algorithm(s) once inside ``benchmark.pedantic`` (the
experiment *is* the thing being timed; statistical repetition happens inside
the experiment via its own trials), prints the result table that
EXPERIMENTS.md quotes, and attaches the aggregated rows to
``benchmark.extra_info`` so they are preserved in the pytest-benchmark JSON
output.

Benchmarks share generated instances through :func:`bench_instance`, which
routes every generator call through the on-disk npz cache
(:mod:`repro.graphs.cache`).  The E-series files sweep overlapping instance
families, so within one ``pytest benchmarks/`` invocation — and across
repeated local runs — identical graphs are built once and re-loaded from
CSR arrays afterwards.  Set ``BENCH_CACHE_DIR`` to relocate the store or
``BENCH_CACHE=0`` to disable caching entirely (e.g. when benchmarking
generation itself).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.evaluation import format_table
from repro.graphs import cached_instance

__all__ = [
    "bench_cache_dir",
    "bench_instance",
    "run_experiment",
    "print_table",
    "peak_rss_bytes",
    "run_measured_subprocess",
    "spill_io_probe",
    "thread_ladder",
]


def thread_ladder(maximum: int = 8, *, minimum: int = 1) -> tuple[int, ...]:
    """Powers-of-two thread/worker ladder for the scaling benchmarks.

    The ladder runs ``minimum, 2*minimum, 4*minimum, ...`` up to a cap that
    is ``maximum`` by default, overridden by the ``BENCH_MAX_THREADS``
    environment variable, and always clamped to the machine's core count —
    oversubscribed rungs measure scheduler noise, not scaling.  The cap
    never drops below ``minimum``, so the ladder is never empty.  Shared by
    bench_e16 (process workers) and bench_e19 (kernel threads) so one
    environment knob trims both on small runners.
    """
    if minimum < 1:
        raise ValueError(f"minimum must be >= 1, got {minimum}")
    cap = maximum
    env = os.environ.get("BENCH_MAX_THREADS", "").strip()
    if env:
        cap = int(env)
    cap = min(cap, os.cpu_count() or 1)
    cap = max(cap, minimum)
    ladder = [minimum]
    while ladder[-1] * 2 <= cap:
        ladder.append(ladder[-1] * 2)
    return tuple(ladder)


def peak_rss_bytes() -> int:
    """Peak resident-set size of the *current* process, in bytes.

    No third-party dependency: on Linux this reads ``VmHWM`` from
    ``/proc/self/status``, which tracks the current address space's
    high-water mark and is **reset on exec** — unlike
    ``getrusage().ru_maxrss``, which a forked child inherits from its
    parent, silently reporting the parent's peak when the parent was ever
    larger.  Elsewhere it falls back to ``ru_maxrss`` (KiB on Linux, bytes
    on macOS).  Peak RSS is a monotone high-water mark either way, so
    comparing two configurations requires running each in a fresh process —
    see :func:`run_measured_subprocess`.
    """
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except OSError:  # pragma: no cover - non-Linux
        pass
    import resource

    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(rss) * (1 if sys.platform == "darwin" else 1024)


def run_measured_subprocess(code: str, *, timeout: float = 3600.0) -> dict[str, Any]:
    """Run ``code`` in a fresh Python subprocess and parse its JSON result.

    The snippet must print a single JSON object as its **last** stdout line
    (conventionally including a ``"peak_rss"`` entry from
    :func:`peak_rss_bytes`).  A fresh interpreter is the only way to compare
    peak-RSS high-water marks between configurations; ``PYTHONPATH`` is
    extended so the child can import :mod:`repro` and this module.
    """
    repo_root = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    extra = f"{repo_root / 'src'}{os.pathsep}{repo_root / 'benchmarks'}"
    env["PYTHONPATH"] = (
        extra + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else extra
    )
    proc = subprocess.run(
        [sys.executable, "-c", code],
        env=env,
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"measured subprocess failed ({proc.returncode}):\n{proc.stderr}"
        )
    lines = proc.stdout.strip().splitlines()
    if not lines:
        raise RuntimeError(
            "measured subprocess printed no result line; "
            f"stderr was:\n{proc.stderr}"
        )
    return json.loads(lines[-1])


def spill_io_probe(build: Callable[[], Any]) -> tuple[Any, dict[str, Any]]:
    """Run ``build()`` under the streamed-build scratch-I/O tracker.

    Wraps :func:`repro.graphs.track_spill_io` and flattens the counters into
    the plain dict a measured subprocess can embed in its JSON result line.
    Shared by E20 and E22 so both gate the one-pass contract: every scratch
    byte (flat spill + window buckets) is written once and read once, i.e.
    ``read_amplification`` ≈ 1.0 — the historical per-window re-scan scored
    O(windows) here, which RSS probes alone never caught.
    """
    from repro.graphs import track_spill_io

    with track_spill_io() as stats:
        result = build()
    return result, {
        "spill_bytes_written": stats.spill_bytes_written,
        "spill_bytes_read": stats.spill_bytes_read,
        "bucket_bytes_written": stats.bucket_bytes_written,
        "bucket_bytes_read": stats.bucket_bytes_read,
        "bytes_written": stats.bytes_written,
        "bytes_read": stats.bytes_read,
        "read_amplification": stats.read_amplification,
    }


def bench_cache_dir() -> str | None:
    """The benchmark suite's instance-cache directory (``None`` = disabled)."""
    if os.environ.get("BENCH_CACHE", "1") in ("", "0"):
        return None
    return os.environ.get(
        "BENCH_CACHE_DIR", str(Path(__file__).resolve().parent / ".bench-cache")
    )


def bench_instance(generator, *, seed: int | None = None, **params: Any):
    """Build (or re-load) a generated instance through the benchmark cache.

    Drop-in replacement for calling the generator directly:
    ``bench_instance(planted_partition, n=400, k=2, p_in=0.3, p_out=0.02,
    seed=7)``.
    """
    return cached_instance(generator, seed=seed, cache_dir=bench_cache_dir(), **params)


def print_table(
    title: str, columns: Sequence[str], rows: Sequence[Sequence[Any]]
) -> str:
    """Render and print an experiment table; returns the rendered string."""
    rendered = format_table(columns, rows, title=title)
    print("\n" + rendered + "\n")
    return rendered


def run_experiment(
    benchmark,
    experiment: Callable[[], dict[str, Any]],
    *,
    title: str,
) -> dict[str, Any]:
    """Run ``experiment`` exactly once under pytest-benchmark timing.

    ``experiment`` returns a dictionary with (at least) ``columns`` and
    ``rows``; the table is printed and stored in ``extra_info``.
    """
    result_holder: dict[str, Any] = {}

    def target() -> None:
        result_holder.update(experiment())

    benchmark.pedantic(target, rounds=1, iterations=1)
    table = print_table(title, result_holder["columns"], result_holder["rows"])
    benchmark.extra_info["table"] = table
    for key, value in result_holder.items():
        if key not in ("columns", "rows"):
            benchmark.extra_info[key] = value
    return result_holder
