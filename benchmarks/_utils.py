"""Shared helpers for the benchmark harness.

Every benchmark file regenerates one experiment of EXPERIMENTS.md: it builds
the workload, runs the algorithm(s) once inside ``benchmark.pedantic`` (the
experiment *is* the thing being timed; statistical repetition happens inside
the experiment via its own trials), prints the result table that
EXPERIMENTS.md quotes, and attaches the aggregated rows to
``benchmark.extra_info`` so they are preserved in the pytest-benchmark JSON
output.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.evaluation import format_table

__all__ = ["run_experiment", "print_table"]


def print_table(
    title: str, columns: Sequence[str], rows: Sequence[Sequence[Any]]
) -> str:
    """Render and print an experiment table; returns the rendered string."""
    rendered = format_table(columns, rows, title=title)
    print("\n" + rendered + "\n")
    return rendered


def run_experiment(
    benchmark,
    experiment: Callable[[], dict[str, Any]],
    *,
    title: str,
) -> dict[str, Any]:
    """Run ``experiment`` exactly once under pytest-benchmark timing.

    ``experiment`` returns a dictionary with (at least) ``columns`` and
    ``rows``; the table is printed and stored in ``extra_info``.
    """
    result_holder: dict[str, Any] = {}

    def target() -> None:
        result_holder.update(experiment())

    benchmark.pedantic(target, rounds=1, iterations=1)
    table = print_table(title, result_holder["columns"], result_holder["rows"])
    benchmark.extra_info["table"] = table
    for key, value in result_holder.items():
        if key not in ("columns", "rows"):
            benchmark.extra_info[key] = value
    return result_holder
