"""Benchmark suite configuration.

Benchmarks are experiments, not micro-benchmarks: each is executed exactly
once (see ``_utils.run_experiment``) and prints the table recorded in
EXPERIMENTS.md.  ``-s``-less runs still show the tables because pytest
captures and replays output for failed tests only; use ``pytest benchmarks/
--benchmark-only -s`` to see the tables live.
"""

import sys
from pathlib import Path

# Make the sibling `_utils` module importable regardless of how pytest sets
# up rootdir/importmode for the benchmarks directory.
sys.path.insert(0, str(Path(__file__).resolve().parent))
