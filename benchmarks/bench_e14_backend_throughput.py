"""E14 — round-engine backend throughput (nodes/second) and speedup.

Runs the distributed driver end-to-end (seeding → T averaging rounds →
query) on both round-engine backends across three orders of magnitude of
``n`` with ``k = 4`` clusters, and records

* ``nodes_per_second`` — node-rounds per wall-clock second (``n·T/elapsed``),
  the throughput measure that is comparable across sizes, and
* ``speedup`` — end-to-end wall-clock ratio per size (message-passing over
  vectorized on the identical workload).

The acceptance bar of the engine refactor is asserted at the largest size:
the vectorized backend must be at least 50× faster end-to-end.

Instance family: ``k = 4`` clusters throughout — ``cycle_of_cliques`` at
``n = 10^3`` and the paper's Section 1.2 ``ring_of_expanders`` scenario at
``n ≥ 10^4``.  (A 4-way cycle of cliques at ``n = 10^5`` would have
``Θ(n²/k) ≈ 1.25·10^9`` edges — tens of GB of CSR — so the dense family is
only representable at the small end; the expander ring keeps ``k = 4`` with
sparse clusters.)  The round budget is fixed (``T = 10``) and β is supplied
explicitly so that no eigensolver runs at ``n = 10^5``; throughput, not
convergence, is what is being measured.

``BENCH_SMOKE=1`` shrinks the sweep for CI (sizes 10^3 and 4·10^3, speedup
bar 10×).
"""

from __future__ import annotations

import os
import time

from repro.core import AlgorithmParameters, DistributedClustering
from repro.graphs import cycle_of_cliques, ring_of_expanders

from _utils import print_table

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")
ROUNDS = 10
BETA = 0.125  # 1/(2k) for k = 4
BACKENDS = ("message-passing", "vectorized")


def _make_instance(n: int):
    if n <= 1000:
        return cycle_of_cliques(4, n // 4, seed=n)
    return ring_of_expanders(4, n // 4, 10, seed=n)


def _run_backend(instance, backend: str) -> float:
    params = AlgorithmParameters.from_values(instance.graph.n, BETA, ROUNDS)
    start = time.perf_counter()
    DistributedClustering(instance.graph, params, seed=7, backend=backend).run()
    return time.perf_counter() - start


def test_e14_backend_throughput(benchmark):
    sizes = (1_000, 4_000) if SMOKE else (1_000, 10_000, 100_000)
    speedup_bar = 10.0 if SMOKE else 50.0

    rows = []
    records = []
    last_instance = None
    for n in sizes:
        instance = _make_instance(n)
        last_instance = instance
        elapsed = {b: _run_backend(instance, b) for b in BACKENDS}
        speedup = elapsed["message-passing"] / elapsed["vectorized"]
        for b in BACKENDS:
            records.append(
                {
                    "n": n,
                    "graph": instance.graph.name,
                    "backend": b,
                    "rounds": ROUNDS,
                    "seconds": elapsed[b],
                    "nodes_per_second": n * ROUNDS / elapsed[b],
                }
            )
        rows.append(
            [
                n,
                instance.graph.name,
                round(elapsed["message-passing"], 3),
                round(elapsed["vectorized"], 4),
                int(n * ROUNDS / elapsed["message-passing"]),
                int(n * ROUNDS / elapsed["vectorized"]),
                round(speedup, 1),
            ]
        )

    table = print_table(
        "E14: end-to-end backend throughput (T = 10, k = 4)",
        [
            "n",
            "graph",
            "message s",
            "vectorized s",
            "msg nodes/s",
            "vec nodes/s",
            "speedup",
        ],
        rows,
    )
    benchmark.extra_info["table"] = table
    benchmark.extra_info["records"] = records
    benchmark.extra_info["speedup_at_largest"] = rows[-1][-1]

    # Timed target for the pytest-benchmark JSON: the vectorized backend on
    # the largest instance (the configuration the refactor exists for).
    params = AlgorithmParameters.from_values(last_instance.graph.n, BETA, ROUNDS)
    benchmark.pedantic(
        lambda: DistributedClustering(
            last_instance.graph, params, seed=7, backend="vectorized"
        ).run(),
        rounds=1,
        iterations=1,
    )

    if SMOKE:
        # Smoke runs on shared CI runners: wall-clock ratios are too noisy
        # for a hard gate, so record the measurement and only warn.
        if rows[-1][-1] < speedup_bar:
            import warnings

            warnings.warn(
                f"smoke speedup {rows[-1][-1]}x below the informal {speedup_bar}x bar "
                "(timing noise on shared runners is expected)",
                stacklevel=1,
            )
    else:
        assert rows[-1][-1] >= speedup_bar, (
            f"vectorized backend speedup {rows[-1][-1]}x below the {speedup_bar}x bar"
        )
