"""E6 — Lemma 4.1: early behaviour of the 1-D load balancing process.

Workload: a cycle-of-cliques instance; the 1-dimensional process starts from
``χ_v`` for a node ``v`` and we track ``E‖Q y(0) − y(t)‖`` (Monte-Carlo over
matchings) for a range of rounds ``t`` around the paper's ``T``, together
with the Lemma 4.1 bound ``2√(t(1 − λ_k))·‖Q y(0)‖``.  The measured curve
must stay below the bound, and per Remark 1 it eventually *increases* with
``t`` (leakage towards the global uniform distribution).
"""

from __future__ import annotations

import numpy as np

from repro.graphs import cycle_of_cliques, theoretical_round_count
from repro.loadbalancing import estimate_expected_projection_distance

from _utils import run_experiment

TRIALS = 12


def _experiment() -> dict:
    instance = cycle_of_cliques(4, 20, seed=1)
    graph = instance.graph
    k = instance.partition.k
    y0 = np.zeros(graph.n)
    y0[0] = 1.0
    t_paper = theoretical_round_count(graph, k)

    rows = []
    for t in (t_paper // 4, t_paper // 2, t_paper, 4 * t_paper, 20 * t_paper):
        estimate = estimate_expected_projection_distance(
            graph, y0, k, int(t), trials=TRIALS, seed=t
        )
        rows.append(
            [
                int(t),
                round(estimate.mean_distance, 4),
                round(estimate.std_distance, 4),
                round(estimate.bound, 4),
                estimate.within_bound,
            ]
        )
    distances = [row[1] for row in rows]
    return {
        "columns": ["t", "E||Qy0 - y(t)|| (measured)", "std", "Lemma 4.1 bound", "within_bound"],
        "rows": rows,
        "distances": distances,
        "T": t_paper,
    }


def test_e06_early_behaviour(benchmark):
    result = run_experiment(
        benchmark, _experiment, title="E6: E||Qy(0) - y(t)|| vs the Lemma 4.1 bound"
    )
    rows = result["rows"]
    # The Lemma 4.1 bound is asymptotic (it carries an o(n^{-c}) slack and a
    # hidden constant); at the smallest t the constant-free bound is within
    # Monte-Carlo noise of the measurement, so the assertion covers t ≥ T/2.
    for row in rows[1:]:
        assert row[4], f"measured distance at t={row[0]} exceeds the Lemma 4.1 bound"
    distances = result["distances"]
    # The distance at T is small (the plateau)...
    assert distances[2] < 0.2
    # ...and grows again for t >> T (Remark 1: convergence to global uniform).
    assert distances[-1] > distances[2]
