"""E10 — Section 4.5: almost-regular graphs.

Workload: clustered graphs with increasing degree heterogeneity Δ/δ.  We
compare the plain algorithm with the degree-capped (Section 4.5) variant.
The claim to validate: the algorithm's guarantee survives a bounded degree
ratio, i.e. accuracy stays high for moderate Δ/δ with the modified protocol.
"""

from __future__ import annotations

from repro.core import AlgorithmParameters, AlmostRegularClustering, CentralizedClustering
from repro.graphs import almost_regular_clustered_graph

from _utils import run_experiment

TRIALS = 2


def _experiment() -> dict:
    rows = []
    for d_min, d_max in ((8, 8), (6, 12), (4, 16)):
        instance = almost_regular_clustered_graph(3, 35, d_min, d_max, seed=d_min * 100 + d_max)
        graph, truth = instance.graph, instance.partition
        params = AlgorithmParameters.from_instance(graph, truth)

        plain_errors, capped_errors = [], []
        for trial in range(TRIALS):
            plain = CentralizedClustering(graph, params, seed=50 + trial).run(keep_loads=False)
            capped = AlmostRegularClustering(graph, params, seed=50 + trial).run(keep_loads=False)
            plain_errors.append(plain.error_against(truth))
            capped_errors.append(capped.error_against(truth))
        rows.append(
            [
                f"{d_min}..{d_max}",
                round(graph.degree_ratio(), 2),
                round(sum(plain_errors) / TRIALS, 3),
                round(sum(capped_errors) / TRIALS, 3),
            ]
        )
    return {
        "columns": ["degree range", "Δ/δ", "plain error", "degree-capped error"],
        "rows": rows,
    }


def test_e10_almost_regular(benchmark):
    result = run_experiment(
        benchmark, _experiment, title="E10: almost-regular graphs (Section 4.5 extension)"
    )
    for row in result["rows"]:
        # The Section 4.5 variant keeps the error small across the sweep.
        assert row[3] <= 0.10
