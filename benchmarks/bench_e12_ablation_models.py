"""E12 — ablation of the averaging substrate.

DESIGN.md calls out the averaging substrate as the main design choice worth
ablating: the paper uses the random matching model for its low communication
cost and full decentralisation, but the clustering mechanism itself only
needs *some* averaging process with the right early behaviour.  We swap the
substrate (random matching / greedy maximal matching / diffusion /
dimension exchange) inside the otherwise identical algorithm and report
accuracy and per-round communication.
"""

from __future__ import annotations

import numpy as np

from repro.core import AlgorithmParameters, CentralizedClustering
from repro.graphs import ring_of_expanders
from repro.loadbalancing import make_averaging_model

from _utils import run_experiment

TRIALS = 2
MODELS = ("random-matching", "maximal-matching", "diffusion", "dimension-exchange")


def _experiment() -> dict:
    instance = ring_of_expanders(3, 30, 8, seed=7)
    graph, truth = instance.graph, instance.partition
    params = AlgorithmParameters.from_instance(graph, truth)
    rows = []
    errors = {}
    for name in MODELS:
        model_errors = []
        comm = None
        for trial in range(TRIALS):
            model = make_averaging_model(name, graph)
            result = CentralizedClustering(
                graph, params, seed=60 + trial, averaging_model=model
            ).run(keep_loads=False)
            model_errors.append(result.error_against(truth))
            comm = model.communication_per_round(result.num_seeds)
        errors[name] = float(np.mean(model_errors))
        rows.append([name, round(errors[name], 3), int(comm), params.rounds])
    return {
        "columns": ["averaging model", "mean error", "words/round (s dims)", "rounds"],
        "rows": rows,
        "errors": errors,
    }


def test_e12_ablation_models(benchmark):
    result = run_experiment(
        benchmark, _experiment, title="E12: averaging-substrate ablation (accuracy vs communication)"
    )
    errors = result["errors"]
    # The paper's substrate solves the instance...
    assert errors["random-matching"] <= 0.10
    # ...and the more synchronised / more expensive substrates are at least as
    # accurate at the same T (they mix faster), which is exactly the trade-off
    # the ablation is meant to exhibit.
    assert errors["diffusion"] <= errors["random-matching"] + 0.05
    assert errors["maximal-matching"] <= errors["random-matching"] + 0.05
