"""E9 — communication cost vs the distributed competitors (Section 1.3).

The paper's key systems argument: the matching model touches at most ⌊n/2⌋
edges per round, whereas the Becchetti et al. dynamics exchanges a value over
*every* edge in *every* round (cost growing with density) and Kempe–McSherry
pays a push-sum whose length is the global mixing time.  Workload: planted
partitions of fixed n with growing internal density; we report words per
round and total words for the three distributed methods.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import AveragingDynamics, DecentralizedOrthogonalIteration
from repro.core import AlgorithmParameters, DistributedClustering
from repro.graphs import planted_partition

from _utils import run_experiment

N, K = 150, 3


def _experiment() -> dict:
    rows = []
    ratios = []
    for p_in in (0.2, 0.4, 0.6):
        instance = planted_partition(N, K, p_in, 0.01, seed=int(p_in * 100), ensure_connected=True)
        graph, truth = instance.graph, instance.partition
        params = AlgorithmParameters.from_instance(graph, truth)

        ours = DistributedClustering(graph, params, seed=4).run()
        ours_words = ours.total_words()
        ours_per_round = ours_words / max(ours.rounds, 1)

        becchetti = AveragingDynamics().cluster(graph, K, seed=4)
        becchetti_per_round = becchetti.words / max(becchetti.rounds, 1)

        kempe = DecentralizedOrthogonalIteration(exact_aggregation=True).cluster(graph, K, seed=4)
        kempe_per_round = kempe.words / max(kempe.rounds, 1)

        rows.append(
            [
                round(p_in, 2),
                graph.num_edges,
                int(ours_per_round),
                int(becchetti_per_round),
                int(kempe_per_round),
                int(ours_words),
                int(becchetti.words),
                int(kempe.words),
                round(ours.error_against(truth), 3),
            ]
        )
        ratios.append(becchetti_per_round / ours_per_round)
    return {
        "columns": [
            "p_in",
            "m",
            "ours words/round",
            "becchetti words/round",
            "kempe words/round",
            "ours total",
            "becchetti total",
            "kempe total",
            "ours error",
        ],
        "rows": rows,
        "becchetti_over_ours_per_round": ratios,
    }


def test_e09_communication(benchmark):
    result = run_experiment(
        benchmark,
        _experiment,
        title="E9: per-round and total communication vs distributed baselines",
    )
    ratios = result["becchetti_over_ours_per_round"]
    # The all-neighbour dynamics costs more per round than the matching model,
    # and its advantage *grows* with density (the paper's argument).
    assert all(r > 1.0 for r in ratios)
    assert ratios[-1] > ratios[0]
    # The matching model's per-round cost is bounded by ~s̄ words per matched
    # edge times n/2 edges, independent of the number of edges m.
    per_round = [row[2] for row in result["rows"]]
    assert max(per_round) <= 4.0 * np.median(per_round)
