"""E2 — Theorem 1.1: T = Θ(log n / (1 - λ_{k+1})) rounds suffice.

Workload: cycle-of-cliques instances of growing size.  For each instance we
measure the *empirical* number of rounds needed to reach ≤ 5 % error
(binary-searching over T with fresh randomness per probe) and compare it to
``log n / (1 - λ_{k+1})``: the ratio should stay bounded as n grows (that is
the Θ).  The table also reports the calibrated prescription (constant 16)
used as the library default.
"""

from __future__ import annotations

import numpy as np

from repro.core import AlgorithmParameters, CentralizedClustering
from repro.graphs import cluster_gap, cycle_of_cliques

from _utils import run_experiment

ERROR_TARGET = 0.05


def _error_at_rounds(instance, rounds: int, seed: int) -> float:
    params = AlgorithmParameters.from_instance(instance.graph, instance.partition).with_rounds(
        rounds
    )
    result = CentralizedClustering(instance.graph, params, seed=seed).run(keep_loads=False)
    return result.error_against(instance.partition)


def _min_rounds(instance, *, seed: int, upper: int) -> int:
    """Smallest T (up to `upper`) reaching the error target, by binary search."""
    lo, hi = 1, upper
    while lo < hi:
        mid = (lo + hi) // 2
        err = np.mean([_error_at_rounds(instance, mid, seed + t) for t in range(2)])
        if err <= ERROR_TARGET:
            hi = mid
        else:
            lo = mid + 1
    return lo


def _experiment() -> dict:
    rows = []
    for clique_size in (15, 25, 40):
        instance = cycle_of_cliques(4, clique_size, seed=clique_size)
        graph = instance.graph
        gap = cluster_gap(graph, 4)
        scale = np.log(graph.n) / gap
        default_T = AlgorithmParameters.from_instance(graph, instance.partition).rounds
        measured = _min_rounds(instance, seed=11, upper=4 * default_T)
        rows.append(
            [
                graph.n,
                round(gap, 4),
                round(scale, 1),
                measured,
                round(measured / scale, 2),
                default_T,
            ]
        )
    ratios = [row[4] for row in rows]
    return {
        "columns": ["n", "1-lambda_{k+1}", "log n / gap", "measured_T(5%)", "ratio", "default_T"],
        "rows": rows,
        "ratio_spread": float(max(ratios) / max(min(ratios), 1e-9)),
    }


def test_e02_round_scaling(benchmark):
    result = run_experiment(
        benchmark, _experiment, title="E2: rounds to 5% error vs Θ(log n / (1 - λ_{k+1}))"
    )
    # The measured/theoretical ratio should stay within a constant band (Θ):
    # allow a generous factor-4 spread across the sweep.
    assert result["ratio_spread"] <= 4.0
    # The library default T must be at least the measured requirement.
    for row in result["rows"]:
        assert row[5] >= row[3]
