"""E18 — streaming spectral pipeline: matrix-free eigensolves over `CSRStorage`.

The spectral toolbox historically materialised the adjacency for every
eigensolve — and `lazy_mixing_time_bound` requested the *full* spectrum,
which routed through an n × n dense allocation (~8 TB at n = 10⁶) no matter
the size.  The matrix-free layer runs Lanczos against
``Graph.normalized_adjacency_operator()``, whose matvecs stream row blocks
through the storage contract, with a deterministic seeded start vector.
This benchmark records the three numbers that layer is accountable for:

* ``peak_rss`` — spectral gap (λ₂ via Lanczos, k = 2) of an SBM instance,
  measured in a fresh subprocess per arm: the **materialising arm** (in-RAM
  instance, scipy CSR ``symmetric_walk_matrix``) vs the **streaming arm**
  (sharded entry served memory-mapped, operator matvecs).  The gate:
  streaming peak RSS ≤ 0.5× materialising at n = 10⁶.
* ``determinism`` — the streaming arm runs twice; λ₂ must be **bit
  identical** (the seeded ``v0`` regression: without it ARPACK drew start
  vectors from numpy's global RNG).
* ``eigenvalue parity`` — at a cross-checkable size the streamed Lanczos
  eigenvalues must match the dense ``eigh`` spectrum to rtol = 1e-8
  (asserted in every mode), and the two subprocess arms must agree on λ₂
  at the measured size.

``BENCH_SMOKE=1`` (CI) trims n to 10⁵ and demotes the RSS-ratio bar to a
warning — a shared runner's interpreter baseline dominates at that size —
while the parity and bit-identity assertions stay hard in every mode.
"""

from __future__ import annotations

import os
import tempfile
import warnings

import numpy as np

from repro.graphs import planted_partition, spectral_decomposition

from _utils import print_table, run_measured_subprocess

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

N = 100_000 if SMOKE else 1_000_000
K = 4
RSS_BAR = 0.5      # streaming peak RSS must be <= this fraction, full mode
ARM_RTOL = 1e-6    # λ₂ agreement between the two subprocess arms at size N
CROSS_N = 1_200    # below _DENSE_LIMIT: full dense eigh is exact reference
CROSS_RTOL = 1e-8  # streamed-vs-dense eigenvalue parity at CROSS_N


def _probabilities(n: int) -> tuple[float, float]:
    cluster = n // K
    return float(2.0 * np.log(n) / cluster), float(2.0 / (n - cluster))


# The materialising arm reproduces the historical sparse path: the instance
# in RAM and the symmetric walk operator realised as a scipy CSR matrix
# (float64 data + index copies, all O(m) resident).  The streaming arm
# opens the sharded entry memory-mapped and lets the spectral pipeline run
# its operator path.  Both use the same seeded v0, so they solve the same
# Lanczos problem and differ only in where the adjacency lives.
_CHILD_TEMPLATE = """
import json, time
import scipy.sparse.linalg as spla
from repro.graphs import cached_instance
from repro.graphs.spectral import lanczos_start_vector, symmetric_walk_matrix
from repro.graphs import random_walk_eigenvalues
from _utils import peak_rss_bytes

inst = cached_instance(
    "planted_partition", seed={seed}, cache_dir={cache_dir!r}, mmap={mmap},
    n={n}, k={k}, p_in={p_in!r}, p_out={p_out!r}, ensure_connected=True,
)
graph = inst.graph
start = time.perf_counter()
if {mmap}:
    vals = random_walk_eigenvalues(graph, num=2)
    lambda2 = float(vals[1])
else:
    sym = symmetric_walk_matrix(graph)
    vals = spla.eigsh(
        sym, k=2, which="LA", v0=lanczos_start_vector(graph.n),
        return_eigenvectors=False,
    )
    lambda2 = float(sorted(vals, reverse=True)[1])
elapsed = time.perf_counter() - start
print(json.dumps({{
    "peak_rss": peak_rss_bytes(),
    "lambda2": lambda2,
    "spectral_gap": 1.0 - lambda2,
    "seconds": elapsed,
}}))
"""


def _measure(cache_dir: str, *, mmap: bool) -> dict:
    p_in, p_out = _probabilities(N)
    code = _CHILD_TEMPLATE.format(
        seed=N, cache_dir=cache_dir, mmap=mmap, n=N, k=K, p_in=p_in, p_out=p_out
    )
    return run_measured_subprocess(code)


def test_e18_streaming_spectral(benchmark):
    # --- cross-checkable parity: streamed Lanczos vs full dense eigh ----- #
    cross = planted_partition(CROSS_N, K, 0.05, 0.002, seed=7, ensure_connected=True)
    streamed = spectral_decomposition(cross.graph, num=K + 1, dense=False)
    materialised = spectral_decomposition(cross.graph, num=K + 1, dense=True)
    assert np.allclose(
        streamed.eigenvalues,
        materialised.eigenvalues[: K + 1],
        rtol=CROSS_RTOL,
        atol=1e-10,
    ), (
        f"streamed eigenvalues diverge from dense eigh at n={CROSS_N}: "
        f"{streamed.eigenvalues} vs {materialised.eigenvalues[: K + 1]}"
    )

    p_in, p_out = _probabilities(N)
    with tempfile.TemporaryDirectory() as cache_dir:
        # Warm both cache formats in a subprocess (generation is E15's
        # business; the measuring parent never holds the instance).
        warm = (
            "import json\n"
            "from repro.graphs import cached_instance\n"
            f"spec = dict(n={N}, k={K}, p_in={p_in!r}, p_out={p_out!r}, "
            "ensure_connected=True)\n"
            f"cached_instance('planted_partition', seed={N}, "
            f"cache_dir={cache_dir!r}, **spec)\n"
            f"cached_instance('planted_partition', seed={N}, "
            f"cache_dir={cache_dir!r}, mmap=True, **spec)\n"
            "print(json.dumps({}))\n"
        )
        run_measured_subprocess(warm)

        dense = _measure(cache_dir, mmap=False)
        stream: dict = {}
        # The streaming arm is the timed target for the benchmark JSON.
        benchmark.pedantic(
            lambda: stream.update(_measure(cache_dir, mmap=True)),
            rounds=1,
            iterations=1,
        )
        # Determinism gate (all modes): a repeated streamed eigensolve is
        # bit-identical — the seeded-v0 regression this PR fixed.
        repeat = _measure(cache_dir, mmap=True)

    assert repeat["lambda2"] == stream["lambda2"], (
        "repeated streamed eigensolves disagree: "
        f"{repeat['lambda2']!r} != {stream['lambda2']!r} (v0 seeding broken?)"
    )
    # Arm parity at the measured size (same v0, same operator semantics —
    # only the adjacency's residence differs).
    assert np.isclose(stream["lambda2"], dense["lambda2"], rtol=ARM_RTOL), (
        f"streaming λ₂ {stream['lambda2']!r} diverges from the materialising "
        f"arm {dense['lambda2']!r} at n={N:,}"
    )

    rss_ratio = stream["peak_rss"] / dense["peak_rss"]
    rows = [
        [
            "materialised (in-RAM, scipy CSR)",
            round(dense["peak_rss"] / 1e6, 1),
            round(dense["seconds"], 2),
            f"{dense['spectral_gap']:.6f}",
        ],
        [
            "streamed (mmap, LinearOperator)",
            round(stream["peak_rss"] / 1e6, 1),
            round(stream["seconds"], 2),
            f"{stream['spectral_gap']:.6f}",
        ],
    ]
    table = print_table(
        f"E18: streaming spectral gap, SBM n = {N:,} "
        f"(RSS ratio {rss_ratio:.2f}, bar {RSS_BAR})",
        ["configuration", "peak RSS MB", "seconds", "spectral gap 1-λ₂"],
        rows,
    )

    benchmark.extra_info["table"] = table
    benchmark.extra_info["rss"] = {
        "n": N,
        "dense_peak_rss": dense["peak_rss"],
        "stream_peak_rss": stream["peak_rss"],
        "ratio": rss_ratio,
        "bar": RSS_BAR,
    }
    benchmark.extra_info["parity"] = {
        "cross_n": CROSS_N,
        "cross_rtol": CROSS_RTOL,
        "lambda2_dense": dense["lambda2"],
        "lambda2_stream": stream["lambda2"],
        "repeat_bit_identical": True,
    }
    benchmark.extra_info["seconds"] = {
        "dense": dense["seconds"],
        "stream": stream["seconds"],
    }

    if SMOKE:
        if rss_ratio > RSS_BAR:
            warnings.warn(
                f"streaming/materialised peak-RSS ratio {rss_ratio:.2f} above "
                f"the {RSS_BAR} bar at smoke size n={N:,} (interpreter "
                "baseline dominates; the gate applies at n=10^6 in full mode)",
                stacklevel=1,
            )
    else:
        assert rss_ratio <= RSS_BAR, (
            f"streaming eigensolve peak RSS is {rss_ratio:.2f}x the "
            f"materialising arm (bar {RSS_BAR}): {stream['peak_rss'] / 1e6:.0f} MB "
            f"vs {dense['peak_rss'] / 1e6:.0f} MB"
        )
