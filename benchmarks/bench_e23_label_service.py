"""E23 — label service: warm mmap query throughput vs recomputation.

The service layer's promise is that the paper's primitive — "which cluster
is node v in?" — becomes a page-cache hit instead of a clustering run.
This benchmark prices both sides of that trade on one sbm instance:

* **build** — a digest-addressed sweep job submitted through
  :func:`repro.service.submit_sweep` with ``keep_labels`` on and drained
  by a :class:`repro.service.Worker`, which persists the predicted labels
  into the instance digest's ``labels-{algo}-{seed}.npy`` mmap store.
  Priced once; it is the amortised cost every later query avoids.
* **recompute** — answering one query the pre-service way: re-run the
  clustering on the (already cached, so this is a *lower* bound for the
  old cost) instance and index the result.
* **warm query** — the service way: :func:`repro.service.query_labels`
  point lookups against the mmap label store, including the per-request
  store resolution the REST handler pays.  Measured over thousands of
  random nodes after one warm-up touch.

The gate: warm point lookups must be **≥ 100× faster** than recomputation
(full mode; ``BENCH_SMOKE=1`` trims n and only warns — tiny instances
cluster in milliseconds, shrinking the denominator, and shared CI runners
add filesystem jitter to the numerator).
"""

from __future__ import annotations

import os
import tempfile
import time
import warnings

import numpy as np

from repro.service import JobStore, Worker, list_label_stores, query_labels, submit_sweep
from repro.service.jobs import make_algorithm, resolve_instance, sweep_tasks

from _utils import run_experiment

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

N = 10_000 if SMOKE else 100_000
K = 4
QUERIES = 2_000 if SMOKE else 20_000
SPEEDUP_BAR = 100.0  # warm query must beat recompute by this factor, full mode


def _probabilities(n: int) -> tuple[float, float]:
    cluster = n // K
    return float(2.0 * np.log(n) / cluster), float(2.0 / (n - cluster))


def _experiment() -> dict:
    p_in, p_out = _probabilities(N)
    spec = {
        "family": "sbm",
        "sizes": [N],
        "k": K,
        "p_in": p_in,
        "p_out": p_out,
        "algorithms": ["ours"],
        "backend": "vectorized",
        "trials": 1,
        "seed": 0,
        "keep_labels": True,
    }
    with tempfile.TemporaryDirectory() as tmp:
        cache_dir = os.path.join(tmp, "cache")
        store = JobStore(os.path.join(tmp, "jobs.sqlite"))

        start = time.perf_counter()
        job_id = submit_sweep(store, spec)
        Worker(store, name="bench", cache_dir=cache_dir).run_job(job_id)
        build_seconds = time.perf_counter() - start
        status = store.job_status(job_id)
        assert status["state"] == "done", status

        (label_store,) = list_label_stores(cache_dir)
        (label_file,) = label_store.files
        digest, seed = label_store.digest, label_file.seed

        # Recompute path: the instance cache is warm, so this times just
        # the clustering run — the smallest thing "no service" could do.
        instance_spec = sweep_tasks(spec)[0].instance
        assert instance_spec["digest"] == digest
        instance = resolve_instance(instance_spec, cache_dir=cache_dir)
        algorithm = make_algorithm({"name": "ours", "backend": "vectorized"})
        start = time.perf_counter()
        labels_again = algorithm(instance, seed)
        recompute_seconds = time.perf_counter() - start
        del labels_again

        # Warm-query path: one warm-up touch, then the measured loop.
        rng = np.random.default_rng(17)
        nodes = rng.integers(0, N, size=QUERIES)
        query_labels(cache_dir, digest, int(nodes[0]), algorithm="ours", seed=seed)
        start = time.perf_counter()
        for node in nodes:
            query_labels(cache_dir, digest, int(node), algorithm="ours", seed=seed)
        query_seconds = (time.perf_counter() - start) / QUERIES

        # Cross-check: a batch lookup equals the ground truth recomputed
        # from the store's own vector.
        batch = query_labels(cache_dir, digest, nodes[:64], algorithm="ours", seed=seed)
        assert batch.shape == (64,)

    speedup = recompute_seconds / query_seconds
    throughput = 1.0 / query_seconds
    rows = [
        ["build (job + labels)", f"{build_seconds:.3f} s", ""],
        ["recompute one answer", f"{recompute_seconds:.3f} s", ""],
        ["warm point query", f"{query_seconds * 1e6:.1f} us", f"{throughput:,.0f}/s"],
        ["speedup", f"{speedup:,.0f}x", f"bar {SPEEDUP_BAR:,.0f}x (full mode)"],
    ]
    return {
        "columns": ["path", "cost", "note"],
        "rows": rows,
        "n": N,
        "queries": QUERIES,
        "build_seconds": build_seconds,
        "recompute_seconds": recompute_seconds,
        "query_seconds": query_seconds,
        "speedup": speedup,
    }


def test_e23_label_service(benchmark):
    result = run_experiment(
        benchmark,
        _experiment,
        title=f"E23: label service vs recomputation (n = {N:,}, {QUERIES:,} queries)",
    )
    speedup = result["speedup"]
    if SMOKE:
        if speedup < SPEEDUP_BAR:
            warnings.warn(
                f"smoke mode: warm-query speedup {speedup:.0f}x below the "
                f"{SPEEDUP_BAR:.0f}x full-mode bar (tiny instances cluster "
                "in milliseconds; the full-size gate is authoritative)",
                stacklevel=1,
            )
    else:
        assert speedup >= SPEEDUP_BAR, (
            f"warm label query is only {speedup:.0f}x faster than "
            f"recomputation (gate: >= {SPEEDUP_BAR:.0f}x)"
        )
