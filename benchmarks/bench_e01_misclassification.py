"""E1 — Theorem 1.1(1): the number of misclassified nodes is o(n).

Workload: cycle-of-cliques and balanced SBM instances with k ∈ {2, 4} and a
sweep of n.  For each instance the algorithm runs with the parameters of
Theorem 1.1 (β = true balance, T from the spectrum) and we record the
misclassification *fraction*; the o(n) claim predicts the fraction shrinks
as n grows.
"""

from __future__ import annotations

import numpy as np

from repro.core import AlgorithmParameters, CentralizedClustering
from repro.graphs import cycle_of_cliques, planted_partition

from _utils import bench_instance, run_experiment

TRIALS = 3


def _error(instance, seed: int) -> float:
    params = AlgorithmParameters.from_instance(instance.graph, instance.partition)
    result = CentralizedClustering(instance.graph, params, seed=seed).run(keep_loads=False)
    return result.error_against(instance.partition)


def _experiment() -> dict:
    rows = []
    # Family 1: cycle of cliques, k = 4, growing clique size.
    for clique_size in (15, 25, 40):
        instance = bench_instance(cycle_of_cliques, k=4, clique_size=clique_size, seed=clique_size)
        errors = [_error(instance, 100 + t) for t in range(TRIALS)]
        rows.append(
            ["cycle_of_cliques", 4, instance.graph.n, float(np.mean(errors)), float(np.max(errors))]
        )
    # Family 2: balanced planted partition, k = 2, growing n.
    for n in (100, 200, 400):
        instance = bench_instance(
            planted_partition, n=n, k=2, p_in=0.30, p_out=0.02, ensure_connected=True, seed=n
        )
        errors = [_error(instance, 200 + t) for t in range(TRIALS)]
        rows.append(["planted_partition", 2, n, float(np.mean(errors)), float(np.max(errors))])
    return {
        "columns": ["family", "k", "n", "mean_error", "max_error"],
        "rows": rows,
        "trend_decreasing": rows[0][3] >= rows[2][3] or rows[3][3] >= rows[5][3],
    }


def test_e01_misclassification_vanishes(benchmark):
    result = run_experiment(
        benchmark, _experiment, title="E1: misclassification fraction vs n (Theorem 1.1(1))"
    )
    rows = result["rows"]
    # The largest instances of both families should be solved with low error.
    assert rows[2][3] <= 0.05, "cycle-of-cliques error should be small at the largest size"
    assert rows[5][3] <= 0.15, "planted-partition error should be small at the largest size"
