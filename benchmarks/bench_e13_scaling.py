"""E13 — near-linear total work of the centralised simulation (Section 1.2).

The paper remarks that the non-distributed version of the algorithm runs in
O(n log n) time given a random-neighbour oracle.  Our centralised
implementation's work per round is O(n + matched pairs)·s; this benchmark
measures wall-clock time for a sweep of n (with everything else held
proportional) and checks that time/(n log n · s) stays within a constant
band — i.e. no super-linear blow-up hides in the implementation.

This is the one benchmark where the *timing* is the result; it uses
``benchmark`` directly on the largest instance and reports the sweep in the
extra-info table.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core import AlgorithmParameters, CentralizedClustering
from repro.graphs import cycle_of_cliques

from _utils import print_table


def _run_once(instance, seed: int) -> float:
    params = AlgorithmParameters.from_instance(instance.graph, instance.partition)
    start = time.perf_counter()
    CentralizedClustering(instance.graph, params, seed=seed).run(keep_loads=False)
    return time.perf_counter() - start


def test_e13_scaling(benchmark):
    # BENCH_SMOKE=1 (CI) trims the sweep to the two smallest sizes.  The
    # array-native generators made instance construction negligible, so the
    # full sweep now reaches twice as far up (n = 80 .. 1280).
    smoke = os.environ.get("BENCH_SMOKE", "") not in ("", "0")
    sizes = (10, 20) if smoke else (10, 20, 40, 80, 160)  # cliques -> n = 80 .. 1280
    rows = []
    normalised = []
    instances = {}
    for clique_size in sizes:
        instance = cycle_of_cliques(8, clique_size, seed=clique_size)
        instances[clique_size] = instance
        elapsed = min(_run_once(instance, seed=3) for _ in range(2))
        n = instance.graph.n
        params = AlgorithmParameters.from_instance(instance.graph, instance.partition)
        scale = n * np.log(n) * params.expected_seeds
        rows.append([n, params.rounds, round(elapsed, 4), round(1e6 * elapsed / scale, 3)])
        normalised.append(elapsed / scale)

    table = print_table(
        "E13: wall-clock of the centralised algorithm vs n log n (work model)",
        ["n", "T", "seconds", "seconds / (n·log n·s̄) ×1e6"],
        rows,
    )
    benchmark.extra_info["table"] = table

    # Timed target for pytest-benchmark: the largest instance.
    largest = instances[sizes[-1]]
    params = AlgorithmParameters.from_instance(largest.graph, largest.partition)
    benchmark.pedantic(
        lambda: CentralizedClustering(largest.graph, params, seed=3).run(keep_loads=False),
        rounds=1,
        iterations=1,
    )

    # The normalised cost may drift by a constant factor (cache effects,
    # eigen-solver differences) but must not explode with n.
    assert max(normalised) <= 6.0 * min(normalised)
