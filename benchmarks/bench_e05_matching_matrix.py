"""E5 — Lemma 2.1: E[M(t)] = (1 - d̄/4)·I + (d̄/4)·P and M(t) is a projection.

Workload: a d-regular connected-caveman graph.  We Monte-Carlo estimate
E[M(t)] from the matching protocol and report the maximum entrywise error
against the closed form for an increasing number of samples (the error should
shrink like 1/√samples), plus a projection/double-stochasticity check on
individual samples.
"""

from __future__ import annotations

import numpy as np

from repro.graphs import connected_caveman
from repro.loadbalancing import (
    empirical_expected_matching_matrix,
    expected_matching_matrix,
    is_doubly_stochastic,
    is_projection_matrix,
    matching_matrix,
    sample_random_matching,
)

from _utils import run_experiment


def _experiment() -> dict:
    instance = connected_caveman(4, 12)  # 11-regular, n = 48
    graph = instance.graph
    theoretical = expected_matching_matrix(graph, sparse=False)
    rng = np.random.default_rng(0)

    # Structural checks on individual samples.
    projection_ok = True
    stochastic_ok = True
    for _ in range(50):
        partner = sample_random_matching(graph, rng)
        m = matching_matrix(graph.n, partner, sparse=False)
        projection_ok &= is_projection_matrix(m)
        stochastic_ok &= is_doubly_stochastic(m)

    rows = []
    for samples in (250, 1000, 4000):
        empirical = empirical_expected_matching_matrix(graph, samples, seed=samples)
        max_err = float(np.abs(empirical - theoretical).max())
        rows.append([samples, round(max_err, 5), round(max_err * np.sqrt(samples), 3)])
    return {
        "columns": ["samples", "max_abs_error", "error*sqrt(samples)"],
        "rows": rows,
        "projection_ok": projection_ok,
        "stochastic_ok": stochastic_ok,
        "errors": [row[1] for row in rows],
    }


def test_e05_matching_matrix(benchmark):
    result = run_experiment(
        benchmark, _experiment, title="E5: Monte-Carlo E[M(t)] vs Lemma 2.1 closed form"
    )
    assert result["projection_ok"], "every sampled M(t) must be a projection (Lemma 2.1(2))"
    assert result["stochastic_ok"], "every sampled M(t) must be doubly stochastic"
    errors = result["errors"]
    # Error decreases with the sample count and is small at the largest count.
    assert errors[-1] < errors[0]
    assert errors[-1] < 0.02
