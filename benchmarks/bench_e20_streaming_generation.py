"""E20 — streamed generation: cold LFR→shard builds without the O(m) array.

PR 7 closes the last O(m)-materialising stage of the out-of-core pipeline:
cold generation.  ``generate_to_cache`` consumes a generator's
``EdgeChunkStream`` chunk by chunk — fused edge keys spill to a flat scratch
file while per-row degrees accumulate, then shards are built window by
window from the spill — so a cold mmap cache entry is written with
O(n + window) peak residency instead of the full edge array.  This benchmark
records what that path is accountable for, each build measured in a
**fresh subprocess** (peak RSS is a per-process high-water mark):

* ``peak_rss`` — cold LFR→shard build, materialising path
  (``cached_instance(..., mmap=True, streaming=False)``: full edge array in
  RAM, then sharded) vs streamed path (``generate_to_cache``).  The gate:
  **streamed peak RSS ≤ 0.5× materialising** at n = 10⁶.
* byte identity — the two builds must leave **byte-identical** cache
  entries, file by file: same digest, same manifest, same shard bytes,
  same labels.  Where generation happens must never change what is stored.
* sweep parity — ``repro sweep sbm --mmap --backend parallel`` (cold cache,
  so the sbm entry is generated streamed, then clustered by the parallel
  backend's blocked kernels) must produce per-trial records equal to the
  dense in-RAM sweep — the end-to-end CLI contract.
* spill I/O — the streamed build's scratch read volume (flat spill +
  window buckets, via the shared ``spill_io_probe``) must stay within
  1.5× of the scratch bytes written, **hard in smoke too**: the one-pass
  bucketed build reads every byte once, and a regression toward the old
  per-window re-scan multiplies this ratio by the window count.

``BENCH_SMOKE=1`` (CI) trims n to 10⁵ and — as with E13–E17 — records the
RSS measurements but only *warns* on the ratio bar: a shared runner's
baseline interpreter RSS dominates at small n.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import warnings
from pathlib import Path

from _utils import print_table, run_measured_subprocess

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

N = 100_000 if SMOKE else 1_000_000
MU = 0.2
AVERAGE_DEGREE = 10
SEED = 7
RSS_BAR = 0.5  # streamed peak RSS must be <= this fraction of materialising

# Sweep-parity workload (cold CLI runs in subprocesses, kept small).
SWEEP_N = 2_000 if SMOKE else 20_000
SWEEP_TRIALS = 2
SWEEP_SEED = 17

# ensure_connected=False: a sparse LFR at n = 10⁶ essentially never comes
# out connected, and E20 measures the cold build, not the retry loop
# (replayed-retry parity is pinned in tests/graphs/test_cache.py).
_CHILD_TEMPLATE = """
import json, time
from repro.graphs import cached_instance, generate_to_cache
from _utils import peak_rss_bytes, spill_io_probe

start = time.perf_counter()
if {streamed}:
    inst, spill_io = spill_io_probe(lambda: generate_to_cache(
        "lfr_benchmark", seed={seed}, cache_dir={cache_dir!r},
        n={n}, mu={mu!r}, average_degree={deg}, ensure_connected=False,
    ))
else:
    spill_io = None
    inst = cached_instance(
        "lfr_benchmark", seed={seed}, cache_dir={cache_dir!r},
        mmap=True, streaming=False,
        n={n}, mu={mu!r}, average_degree={deg}, ensure_connected=False,
    )
elapsed = time.perf_counter() - start
print(json.dumps({{
    "peak_rss": peak_rss_bytes(),
    "seconds": elapsed,
    "num_edges": int(inst.graph.num_edges),
    "spill_io": spill_io,
}}))
"""

#: scratch bytes read / scratch bytes written during the streamed build —
#: the one-pass spill reads every byte it spilled exactly once, so the
#: end-to-end amplification is 1.0; the bar leaves headroom for bounded
#: re-reads without re-admitting the historical O(windows) re-scan.
SPILL_READ_BAR = 1.5


def _measure_cold_build(cache_dir: str, *, streamed: bool) -> dict:
    code = _CHILD_TEMPLATE.format(
        streamed=streamed,
        seed=SEED,
        cache_dir=cache_dir,
        n=N,
        mu=MU,
        deg=AVERAGE_DEGREE,
    )
    return run_measured_subprocess(code)


def _assert_trees_identical(a: Path, b: Path) -> int:
    """Assert two cache directories hold byte-identical file trees."""
    files_a = sorted(str(p.relative_to(a)) for p in a.rglob("*") if p.is_file())
    files_b = sorted(str(p.relative_to(b)) for p in b.rglob("*") if p.is_file())
    assert files_a == files_b, (
        "streamed and materialising builds wrote different file sets: "
        f"{files_a} vs {files_b}"
    )
    total = 0
    for rel in files_a:
        bytes_a = (a / rel).read_bytes()
        bytes_b = (b / rel).read_bytes()
        assert bytes_a == bytes_b, (
            f"cache entry file {rel!r} differs between the streamed and "
            "materialising generation paths"
        )
        total += len(bytes_a)
    return total


def _probabilities(n: int) -> tuple[float, float]:
    import numpy as np

    cluster = n // 4
    return float(2.0 * np.log(n) / cluster), float(2.0 / (n - cluster))


def _run_sweep_cli(cache_dir: Path, json_path: Path, *, mmap: bool) -> list:
    """Run ``repro sweep sbm`` in a fresh subprocess, return its records."""
    p_in, p_out = _probabilities(SWEEP_N)
    cmd = [
        sys.executable, "-m", "repro", "sweep", "sbm",
        "--sizes", str(SWEEP_N),
        "--k", "4",
        "--p-in", repr(p_in),
        "--p-out", repr(p_out),
        "--backend", "parallel",
        "--trials", str(SWEEP_TRIALS),
        "--seed", str(SWEEP_SEED),
        "--cache-dir", str(cache_dir),
        "--json", str(json_path),
    ]
    if mmap:
        cmd.append("--mmap")
    repo_root = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    extra = str(repo_root / "src")
    env["PYTHONPATH"] = (
        extra + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else extra
    )
    proc = subprocess.run(
        cmd, env=env, capture_output=True, text=True, timeout=1800.0
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"sweep CLI failed ({proc.returncode}):\n{proc.stderr}"
        )
    return json.loads(json_path.read_text(encoding="utf-8"))


def test_e20_streaming_generation(benchmark):
    with tempfile.TemporaryDirectory() as mat_dir, \
            tempfile.TemporaryDirectory() as stream_dir:
        # Cold builds, one fresh subprocess each: same generator, same seed,
        # separate empty cache directories.
        materialising = _measure_cold_build(mat_dir, streamed=False)
        streamed: dict = {}

        # The streamed build is the timed target for the benchmark JSON.
        benchmark.pedantic(
            lambda: streamed.update(_measure_cold_build(stream_dir, streamed=True)),
            rounds=1,
            iterations=1,
        )

        # Correctness gate (all modes): both paths consume the same seeded
        # chunk stream and the same shard cut rule, so the finished entries
        # must match byte for byte.
        assert streamed["num_edges"] == materialising["num_edges"]
        entry_bytes = _assert_trees_identical(Path(stream_dir), Path(mat_dir))

        # One-pass spill gate (all modes, smoke included): total scratch
        # read volume must stay within SPILL_READ_BAR of what was written.
        spill_io = streamed["spill_io"]
        assert spill_io["bytes_written"] > 0, "streamed build spilled nothing"
        assert spill_io["read_amplification"] <= SPILL_READ_BAR, (
            f"streamed build read {spill_io['read_amplification']:.2f}x the "
            f"scratch bytes it wrote (bar {SPILL_READ_BAR}): the one-pass "
            "spill has regressed toward the per-window re-scan"
        )

    rss_ratio = streamed["peak_rss"] / materialising["peak_rss"]
    rows = [
        [
            "materialising (edge array, then shard)",
            round(materialising["peak_rss"] / 1e6, 1),
            round(materialising["seconds"], 2),
        ],
        [
            "streamed (spill + windowed shard build)",
            round(streamed["peak_rss"] / 1e6, 1),
            round(streamed["seconds"], 2),
        ],
    ]
    table = print_table(
        f"E20: cold LFR→shard generation, n = {N:,} "
        f"(RSS ratio {rss_ratio:.2f}, bar {RSS_BAR})",
        ["configuration", "peak RSS MB", "seconds"],
        rows,
    )

    # --- CLI parity: cold mmap sweep on the parallel backend ------------- #
    with tempfile.TemporaryDirectory() as sweep_dir:
        sweep_root = Path(sweep_dir)
        dense_records = _run_sweep_cli(
            sweep_root / "dense-cache", sweep_root / "dense.json", mmap=False
        )
        mmap_records = _run_sweep_cli(
            sweep_root / "mmap-cache", sweep_root / "mmap.json", mmap=True
        )
    assert mmap_records == dense_records, (
        "cold --mmap sweep on the parallel backend changed the per-trial "
        "records vs the dense in-RAM sweep"
    )
    assert len(mmap_records) == SWEEP_TRIALS

    benchmark.extra_info["table"] = table
    benchmark.extra_info["rss"] = {
        "n": N,
        "materialising_peak_rss": materialising["peak_rss"],
        "streamed_peak_rss": streamed["peak_rss"],
        "ratio": rss_ratio,
        "bar": RSS_BAR,
    }
    benchmark.extra_info["seconds"] = {
        "materialising": materialising["seconds"],
        "streamed": streamed["seconds"],
    }
    benchmark.extra_info["entry_bytes"] = entry_bytes
    benchmark.extra_info["num_edges"] = streamed["num_edges"]
    benchmark.extra_info["spill_io"] = dict(spill_io, bar=SPILL_READ_BAR)

    if SMOKE:
        # At n = 10⁵ the interpreter baseline (~100 MB of numpy/scipy)
        # dominates both measurements; record, warn, don't gate.
        if rss_ratio > RSS_BAR:
            warnings.warn(
                f"streamed/materialising peak-RSS ratio {rss_ratio:.2f} above "
                f"the {RSS_BAR} bar at smoke size n={N:,} (interpreter "
                "baseline dominates; the gate applies at n=10^6 in full mode)",
                stacklevel=1,
            )
    else:
        assert rss_ratio <= RSS_BAR, (
            f"streamed generation peak RSS is {rss_ratio:.2f}x the "
            f"materialising path (bar {RSS_BAR}): "
            f"{streamed['peak_rss'] / 1e6:.0f} MB vs "
            f"{materialising['peak_rss'] / 1e6:.0f} MB"
        )
