"""E3 — Theorem 1.1(2): message complexity O(T·n·k·log k) words, ≤ ⌊n/2⌋ matched edges/round.

Workload: the distributed (message-passing) implementation on
cycle-of-cliques instances of growing size, with exact word accounting from
the simulator.  Reported per instance:

* measured total words vs the bound ``T · n · k · log₂ k``,
* the maximum number of matched edges in any round vs ``⌊n/2⌋``,
* words per node (the quantity that should stay poly-logarithmic).
"""

from __future__ import annotations

import numpy as np

from repro.core import AlgorithmParameters, DistributedClustering
from repro.graphs import cycle_of_cliques

from _utils import run_experiment


def _experiment() -> dict:
    rows = []
    for clique_size in (10, 15, 20):
        instance = cycle_of_cliques(4, clique_size, seed=clique_size)
        graph, truth = instance.graph, instance.partition
        params = AlgorithmParameters.from_instance(graph, truth)
        result = DistributedClustering(graph, params, seed=3).run()
        k = truth.k
        bound = params.rounds * graph.n * k * max(np.log2(k), 1.0)
        matched = result.diagnostics["matched_edges_per_round"]
        rows.append(
            [
                graph.n,
                params.rounds,
                result.total_words(),
                int(bound),
                round(result.total_words() / bound, 3),
                max(matched) if matched else 0,
                graph.n // 2,
                round(result.total_words() / graph.n, 1),
                round(result.error_against(truth), 3),
            ]
        )
    return {
        "columns": [
            "n",
            "T",
            "measured_words",
            "bound_TnklogK",
            "measured/bound",
            "max_matched_edges",
            "n//2",
            "words_per_node",
            "error",
        ],
        "rows": rows,
    }


def test_e03_message_complexity(benchmark):
    result = run_experiment(
        benchmark, _experiment, title="E3: message complexity vs O(T·n·k·log k) (Theorem 1.1(2))"
    )
    for row in result["rows"]:
        measured_over_bound = row[4]
        max_matched, half_n = row[5], row[6]
        assert measured_over_bound <= 1.5, "measured words should be within the stated bound"
        assert max_matched <= half_n, "a matching never uses more than ⌊n/2⌋ edges"
