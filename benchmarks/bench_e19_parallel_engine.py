"""E19 — threaded round-engine throughput and thread-scaling.

PR 6 adds the third ``RoundEngine`` backend: fused numba kernels
(:mod:`repro.core.kernels`) that run the three-step matching protocol and
the matched-pair averaging as two compiled loops over the CSR arrays, with
counter-based per-node randomness so results are **bit-identical across
thread counts and repeat runs**.  This benchmark records, on sparse SBM
instances (k = 4, expected degree Θ(log n)):

* ``vec_seconds`` — a T = 10 round run on the vectorized backend (the
  incumbent array path), per instance size,
* ``par_seconds@t`` — the same run on the parallel backend for every rung
  of the thread ladder (``thread_ladder()``: powers of two up to
  ``BENCH_MAX_THREADS``/core count),
* ``speedup`` — ``vec_seconds`` over the best parallel time at the largest
  size; the backend's acceptance bar is ≥ 2x at n = 10⁶ on a ≥ 8-core
  machine with numba installed.

Correctness gates hold in **every** mode, because they are the backend's
actual contract: all thread counts, a repeat run and — since PR 7 lifted
the in-memory-CSR restriction — a run on **memory-mapped storage** (fused
kernels block-sliced over ``iter_row_blocks``) must all produce
bit-identical loads, seeds and per-round matching counts.

``BENCH_SMOKE=1`` (CI) trims the sweep to n = 10⁴ and demotes the speedup
bar to a warning — as does a missing numba install (the factory then falls
back to the vectorized backend, which this bench records rather than
hides) or a small core count.
"""

from __future__ import annotations

import os
import tempfile
import time
import warnings
from pathlib import Path

import numpy as np

from repro._accel import HAVE_NUMBA
from repro.core import AlgorithmParameters, make_engine
from repro.graphs import Graph, MmapStorage

from _utils import bench_instance, print_table, thread_ladder

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")
SIZES = (10_000,) if SMOKE else (10_000, 100_000, 1_000_000)
THREAD_LADDER = thread_ladder(8)
ROUNDS = 10
BETA = 0.125  # 1/(2k) for k = 4
K = 4
SPEEDUP_BAR = 2.0  # at the largest size, full mode, numba, >= 8 cores


def _probabilities(n: int) -> tuple[float, float]:
    """Sparse-regime SBM probabilities: expected degree Θ(log n)."""
    cluster = n // K
    return 2.0 * np.log(n) / cluster, 2.0 / (n - cluster)


def _build(backend: str, graph, params, n: int, **options):
    # Without numba the 'parallel' factory falls back to the vectorized
    # backend with a RuntimeWarning; the bench measures that configuration
    # honestly instead of failing on the warning.
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return make_engine(backend, graph, params, seed=n, **options)


def _timed_run(backend: str, graph, params, n: int, **options):
    engine = _build(backend, graph, params, n, **options)
    start = time.perf_counter()
    result = engine.run()
    return time.perf_counter() - start, result


def _fingerprint(result):
    return (
        result.seeds.tobytes(),
        result.seed_ids.tobytes(),
        result.loads.tobytes(),
        tuple(result.matched_edges_per_round),
    )


def test_e19_parallel_engine(benchmark):
    # Warm-up at the smallest size so numba's compile time (cached on disk,
    # but paid once per process) never lands inside a timed run.
    p_in, p_out = _probabilities(SIZES[0])
    warm = bench_instance(
        "planted_partition",
        n=SIZES[0],
        k=K,
        p_in=p_in,
        p_out=p_out,
        ensure_connected=True,
        seed=SIZES[0],
    )
    warm_params = AlgorithmParameters.from_values(warm.graph.n, BETA, ROUNDS)
    _build("parallel", warm.graph, warm_params, SIZES[0]).run()

    rows = []
    records = []
    for n in SIZES:
        p_in, p_out = _probabilities(n)
        instance = bench_instance(
            "planted_partition",
            n=n,
            k=K,
            p_in=p_in,
            p_out=p_out,
            ensure_connected=True,
            seed=n,
        )
        graph = instance.graph
        params = AlgorithmParameters.from_values(graph.n, BETA, ROUNDS)

        vec_seconds, _ = _timed_run("vectorized", graph, params, n)

        par_seconds: dict[int, float] = {}
        reference = None
        kernel = None
        for threads in THREAD_LADDER:
            elapsed, result = _timed_run(
                "parallel", graph, params, n, threads=threads
            )
            par_seconds[threads] = elapsed
            kernel = result.metadata.get("kernel", "vectorized-fallback")
            # Correctness gate (all modes): every thread count produces the
            # same bits.
            if reference is None:
                reference = _fingerprint(result)
            else:
                assert _fingerprint(result) == reference, (
                    f"parallel backend with {threads} threads changed the "
                    f"result at n={n}"
                )
        # Correctness gate (all modes): repeat runs are bit-identical.
        _, repeat = _timed_run(
            "parallel", graph, params, n, threads=THREAD_LADDER[0]
        )
        assert _fingerprint(repeat) == reference, (
            f"repeat parallel run changed the result at n={n}"
        )

        # Correctness gate (all modes, PR 7): the parallel backend on
        # memory-mapped storage runs the fused kernels block-sliced over
        # ``iter_row_blocks`` — the counter-based per-node RNG makes that
        # bit-identical to the monolithic in-RAM kernels.
        with tempfile.TemporaryDirectory() as tmp:
            indptr, indices = graph.csr_arrays()
            entry = Path(tmp) / "entry.csr"
            MmapStorage.write(entry, np.asarray(indptr), np.asarray(indices))
            mm_graph = Graph.from_storage(MmapStorage(entry), name=graph.name)
            mmap_seconds, mm_result = _timed_run(
                "parallel", mm_graph, params, n, threads=THREAD_LADDER[0]
            )
            assert _fingerprint(mm_result) == reference, (
                f"parallel backend on mmap storage changed the result at n={n}"
            )

        best = min(par_seconds.values())
        speedup = vec_seconds / best
        records.append(
            {
                "n": n,
                "edges": graph.num_edges,
                "kernel": kernel,
                "vec_seconds": vec_seconds,
                "par_seconds": {str(t): s for t, s in par_seconds.items()},
                "par_mmap_seconds": mmap_seconds,
                "speedup": speedup,
            }
        )
        rows.append(
            [
                n,
                kernel,
                round(vec_seconds, 3),
                " ".join(
                    f"{t}:{par_seconds[t]:.3f}" for t in THREAD_LADDER
                ),
                round(mmap_seconds, 3),
                round(speedup, 2),
            ]
        )

    table = print_table(
        f"E19: parallel round engine vs vectorized (SBM, T = {ROUNDS})",
        ["n", "kernel", "vec s", "parallel s @threads", "mmap s", "speedup"],
        rows,
    )
    benchmark.extra_info["table"] = table
    benchmark.extra_info["records"] = records
    benchmark.extra_info["thread_ladder"] = list(THREAD_LADDER)
    benchmark.extra_info["have_numba"] = HAVE_NUMBA

    # Timed target for the pytest-benchmark JSON: the widest parallel run on
    # the largest instance.
    largest = records[-1]
    n = largest["n"]
    p_in, p_out = _probabilities(n)
    instance = bench_instance(
        "planted_partition",
        n=n,
        k=K,
        p_in=p_in,
        p_out=p_out,
        ensure_connected=True,
        seed=n,
    )
    params = AlgorithmParameters.from_values(instance.graph.n, BETA, ROUNDS)
    benchmark.pedantic(
        lambda: _build(
            "parallel", instance.graph, params, n, threads=max(THREAD_LADDER)
        ).run(),
        rounds=1,
        iterations=1,
    )

    speedup = largest["speedup"]
    if SMOKE or not HAVE_NUMBA or max(THREAD_LADDER) < 8:
        # Smoke runs, no-numba fallback configurations and small machines:
        # record the measurement, warn instead of gating.
        if speedup < SPEEDUP_BAR:
            warnings.warn(
                f"parallel-engine speedup {speedup:.2f}x at n={n} below the "
                f"{SPEEDUP_BAR}x bar (kernel={largest['kernel']}, "
                f"{os.cpu_count()} cpu(s); timing noise expected)",
                stacklevel=1,
            )
    else:
        assert speedup >= SPEEDUP_BAR, (
            f"parallel-engine speedup {speedup:.2f}x at n={n} below the "
            f"{SPEEDUP_BAR}x bar"
        )
