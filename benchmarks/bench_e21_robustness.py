"""E21 — robustness under failure injection at scale.

The failure layer (PR 8) turns message drops and node crashes into
backend-independent masks drawn from dedicated splitmix64 counter streams,
so the *vectorized* engine can run robustness sweeps at sizes the per-node
simulator cannot touch.  This benchmark measures the misclassification rate
as a function of the message-drop probability on a sparse SBM instance
(k = 4, expected internal degree 8·ln n — dense enough that T = 80 rounds
reach a low-error plateau, so degradation is attributable to the injected
failures rather than to an unconverged baseline) at n = 10⁶:

* the drop ladder (0, 0.01, 0.05, 0.1), each averaged over ``TRIALS``
  independent seeds, on the vectorized backend,
* one composite point (drop 0.05 + crash 0.01) — the configuration the
  cross-backend parity suite pins bit-identically across engines,
* the reliable-network baseline (drop 0) doubles as a regression anchor:
  injecting ``MessageDropFailures(0.0)`` must not change the labels of a
  ``failures=None`` run (the masks burn no generator draws).

The per-point records (drop rate, crash fraction, mean error, matched
edges) land in ``benchmark.extra_info["records"]`` and therefore in the
pytest-benchmark JSON artifact that the CI smoke job uploads —
misclassification-vs-drop-rate is preserved run over run.

``BENCH_SMOKE=1`` (CI) trims the instance to n = 10⁴ and demotes the
degradation bars to warnings; the completion of the ladder and the drop-0
bit-identity gate hold in every mode.
"""

from __future__ import annotations

import os
import warnings

import numpy as np

from repro.core import AlgorithmParameters, DistributedClustering
from repro.distsim import CompositeFailures, CrashFailures, MessageDropFailures

from _utils import bench_instance, run_experiment

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")
N = 10_000 if SMOKE else 1_000_000
TRIALS = 3 if SMOKE else 2
DROP_LADDER = (0.0, 0.01, 0.05, 0.1)
COMPOSITE = (0.05, 0.01)  # (drop_prob, crash_fraction) — the parity config
ROUNDS = 80
BETA = 0.125  # 1/(2k) for k = 4
K = 4
BASELINE_ERROR_BAR = 0.08  # reliable network on the easy sparse instance
DEGRADE_BAR = 0.25  # worst ladder point stays within this of the baseline


def _probabilities(n: int) -> tuple[float, float]:
    """Sparse-regime SBM probabilities: expected internal degree 8·ln n."""
    cluster = n // K
    return 8.0 * np.log(n) / cluster, 2.0 / (n - cluster)


def _failure_model(drop_prob: float, crash_fraction: float):
    if drop_prob == 0.0 and crash_fraction == 0.0:
        return None
    if crash_fraction == 0.0:
        return MessageDropFailures(drop_prob)
    if drop_prob == 0.0:
        return CrashFailures(crash_fraction)
    return CompositeFailures(
        MessageDropFailures(drop_prob), CrashFailures(crash_fraction)
    )


def _run(graph, params, seed, failures):
    return DistributedClustering(
        graph, params, seed=seed, backend="vectorized", failures=failures
    ).run()


def _experiment() -> dict:
    p_in, p_out = _probabilities(N)
    instance = bench_instance(
        "planted_partition",
        n=N,
        k=K,
        p_in=p_in,
        p_out=p_out,
        ensure_connected=True,
        seed=N,
    )
    graph, truth = instance.graph, instance.partition
    params = AlgorithmParameters.from_values(graph.n, BETA, ROUNDS)

    # Regression anchor: a zero-probability drop model is the reliable
    # network, bit for bit — the bound masks burn no generator draws.
    clean = _run(graph, params, seed=1, failures=None)
    injected = _run(graph, params, seed=1, failures=MessageDropFailures(0.0))
    assert np.array_equal(
        clean.partition.labels, injected.partition.labels
    ), "MessageDropFailures(0.0) changed the labels of a reliable run"

    rows = []
    records = []
    points = [(drop, 0.0) for drop in DROP_LADDER] + [COMPOSITE]
    for drop_prob, crash_fraction in points:
        errors = []
        matched = []
        for trial in range(TRIALS):
            result = _run(
                graph,
                params,
                seed=1 + trial,
                failures=_failure_model(drop_prob, crash_fraction),
            )
            errors.append(result.error_against(truth))
            matched.append(
                int(np.sum(result.diagnostics["matched_edges_per_round"]))
            )
        mean_error = float(np.mean(errors))
        records.append(
            {
                "n": N,
                "drop_prob": drop_prob,
                "crash_fraction": crash_fraction,
                "trials": TRIALS,
                "mean_error": mean_error,
                "errors": errors,
                "mean_matched_edges": float(np.mean(matched)),
            }
        )
        rows.append(
            [
                drop_prob,
                crash_fraction,
                round(mean_error, 4),
                int(np.mean(matched)),
            ]
        )

    ladder_errors = {r["drop_prob"]: r["mean_error"] for r in records[:-1]}
    return {
        "columns": ["drop prob", "crash fraction", "mean error", "matched edges"],
        "rows": rows,
        "records": records,
        "n": N,
        "baseline_error": ladder_errors[0.0],
        "worst_ladder_error": max(ladder_errors.values()),
    }


def test_e21_robustness(benchmark):
    result = run_experiment(
        benchmark,
        _experiment,
        title=f"E21: misclassification vs message-drop rate (SBM, n = {N})",
    )
    baseline = result["baseline_error"]
    worst = result["worst_ladder_error"]
    # The ladder itself completing (5 points x TRIALS runs) is the hard
    # acceptance bar; the error shape is gated softly because a smoke-sized
    # instance is noisier than the full n = 10^6 sweep.
    assert len(result["records"]) == len(DROP_LADDER) + 1
    if SMOKE:
        if baseline > BASELINE_ERROR_BAR:
            warnings.warn(
                f"reliable-network error {baseline:.3f} above the "
                f"{BASELINE_ERROR_BAR} bar at n={result['n']} (smoke size)",
                stacklevel=1,
            )
        if worst > baseline + DEGRADE_BAR:
            warnings.warn(
                f"drop-ladder error {worst:.3f} degrades more than "
                f"{DEGRADE_BAR} over the baseline {baseline:.3f} (smoke size)",
                stacklevel=1,
            )
    else:
        assert baseline <= BASELINE_ERROR_BAR, (
            f"reliable-network error {baseline:.3f} above the "
            f"{BASELINE_ERROR_BAR} bar at n={result['n']}"
        )
        assert worst <= baseline + DEGRADE_BAR, (
            f"drop-ladder error {worst:.3f} degrades more than {DEGRADE_BAR} "
            f"over the baseline {baseline:.3f}"
        )
