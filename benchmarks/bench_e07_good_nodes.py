"""E7 — Lemma 4.3 and the good-node argument.

Workload: a ring of expanders.  We compute the per-node error contributions
``α_v`` (equation (4)), split the nodes into *good* and *bad* according to
the Section 4.1 cutoff, and measure ``E‖y(T) − χ_{S_j}‖`` for the
1-dimensional process started at the best (smallest-α) and worst (largest-α)
nodes.  Lemma 4.3 predicts a small distance from good starting nodes; the
table also reports the bad-node count against the averaging-argument bound.
"""

from __future__ import annotations

import numpy as np

from repro.core import structure_theory_report
from repro.core.theory import alpha_values
from repro.graphs import ring_of_expanders, theoretical_round_count
from repro.loadbalancing import LoadBalancingProcess

from _utils import run_experiment

TRIALS = 6


def _mean_distance_to_cluster(instance, start: int, rounds: int, seed: int) -> float:
    graph, truth = instance.graph, instance.partition
    cluster = truth.cluster(truth.label_of(start))
    chi = np.zeros(graph.n)
    chi[cluster] = 1.0 / cluster.size
    distances = []
    for trial in range(TRIALS):
        y0 = np.zeros(graph.n)
        y0[start] = 1.0
        process = LoadBalancingProcess(graph, y0, seed=seed + trial)
        yt = process.run(rounds)
        distances.append(float(np.linalg.norm(yt - chi)))
    return float(np.mean(distances))


def _experiment() -> dict:
    instance = ring_of_expanders(3, 30, 8, seed=2)
    graph, truth = instance.graph, instance.partition
    rounds = theoretical_round_count(graph, truth.k)
    alphas = alpha_values(graph, truth)
    report = structure_theory_report(graph, truth)

    best_node = int(np.argmin(alphas))
    worst_node = int(np.argmax(alphas))
    reference = 1.0 / np.sqrt(truth.sizes.min())  # ‖χ_S‖ scale for context

    rows = [
        [
            "good (min alpha)",
            best_node,
            round(float(alphas[best_node]), 5),
            round(_mean_distance_to_cluster(instance, best_node, rounds, seed=31), 4),
        ],
        [
            "worst (max alpha)",
            worst_node,
            round(float(alphas[worst_node]), 5),
            round(_mean_distance_to_cluster(instance, worst_node, rounds, seed=77), 4),
        ],
    ]
    return {
        "columns": ["start node", "node id", "alpha_v", "E||y(T) - chi_S||"],
        "rows": rows,
        "norm_chi_S": float(reference),
        "num_bad_nodes": report.num_bad_nodes,
        "bad_node_bound": report.bad_node_bound,
        "lemma42_holds": report.lemma42_holds,
    }


def test_e07_good_nodes(benchmark):
    result = run_experiment(
        benchmark, _experiment, title="E7: load distance to χ_S from good vs bad seeds (Lemma 4.3)"
    )
    good_distance = result["rows"][0][3]
    # Starting at a good node, y(T) lands close to the cluster indicator:
    # within a small multiple of ‖χ_S‖ = 1/√|S|.
    assert good_distance <= 2.0 * result["norm_chi_S"]
    # Lemma 4.2's (constant-1) bound holds on this instance.
    assert result["lemma42_holds"]
