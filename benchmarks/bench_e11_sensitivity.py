"""E11 — robustness / sensitivity to the algorithm's knobs.

The paper highlights that the algorithm does not need to know k — a lower
bound β on the balance suffices — and fixes the seeding intensity and the
query threshold by the analysis.  This benchmark sweeps each knob around the
prescribed value on a fixed instance:

* β mis-specification (too small / exact / too large),
* the query threshold (×1/4, ×1, ×4 of the prescribed 1/(√(2β)·n)),
* the seeding intensity s̄ (fewer / prescribed / more trials),
* the message-drop probability (failure injection through the vectorized
  round engine, with the per-node message-passing simulator as an
  independent cross-check arm at this small n),

and reports the resulting error, confirming a broad plateau around the
prescribed values (and identifying which side fails first).  The failure
sweep's two arms run entirely different machinery — counter-stream drop
masks over array rounds versus per-message coin flips in the simulator —
so their loose agreement is a genuine cross-validation of the failure
layer, not a tautology.
"""

from __future__ import annotations

import numpy as np

from repro.core import AlgorithmParameters, CentralizedClustering, DistributedClustering
from repro.distsim import MessageDropFailures
from repro.graphs import cycle_of_cliques

from _utils import run_experiment

TRIALS = 3
DROP_LADDER = (0.0, 0.05, 0.1)
CROSS_CHECK_TOLERANCE = 0.15  # |vectorized - message-passing| mean error


def _run(graph, truth, params, seed0) -> float:
    errors = []
    for trial in range(TRIALS):
        result = CentralizedClustering(graph, params, seed=seed0 + trial).run(keep_loads=False)
        errors.append(result.error_against(truth))
    return float(np.mean(errors))


def _run_failures(graph, truth, params, seed0, backend, drop_prob) -> float:
    errors = []
    for trial in range(TRIALS):
        failures = MessageDropFailures(drop_prob) if drop_prob > 0.0 else None
        result = DistributedClustering(
            graph, params, seed=seed0 + trial, backend=backend, failures=failures
        ).run()
        errors.append(result.error_against(truth))
    return float(np.mean(errors))


def _experiment() -> dict:
    instance = cycle_of_cliques(4, 20, seed=3)
    graph, truth = instance.graph, instance.partition
    base = AlgorithmParameters.from_instance(graph, truth)
    rows = []

    # Sweep 1: beta mis-specification (threshold and s̄ both follow beta).
    for factor in (0.25, 0.5, 1.0, 2.0):
        beta = min(1.0, base.beta * factor)
        params = AlgorithmParameters.from_graph(graph, truth.k, beta=beta)
        rows.append(["beta", f"{factor}x", round(_run(graph, truth, params, 10), 3)])

    # Sweep 2: query threshold only.
    for factor in (0.25, 1.0, 4.0):
        params = base.with_threshold(base.threshold * factor)
        rows.append(["threshold", f"{factor}x", round(_run(graph, truth, params, 20), 3)])

    # Sweep 3: seeding trials only.
    for factor in (0.25, 1.0, 3.0):
        trials = max(1, int(round(base.num_seeding_trials * factor)))
        params = base.with_seeding_trials(trials)
        rows.append(["seeding trials", f"{factor}x", round(_run(graph, truth, params, 30), 3)])

    # Sweep 4 (PR 8): message-drop probability, vectorized engine with the
    # per-node simulator as an independent cross-check arm.
    failure_rows = []
    for drop_prob in DROP_LADDER:
        vec = _run_failures(graph, truth, base, 40, "vectorized", drop_prob)
        mp = _run_failures(graph, truth, base, 40, "message-passing", drop_prob)
        rows.append(["drop prob", f"{drop_prob} (vec)", round(vec, 3)])
        rows.append(["drop prob", f"{drop_prob} (mp)", round(mp, 3)])
        failure_rows.append({"drop_prob": drop_prob, "vectorized": vec, "message_passing": mp})

    baseline_error = [r[2] for r in rows if r[0] == "threshold" and r[1] == "1.0x"][0]
    return {
        "columns": ["knob", "setting (× prescribed)", "mean error"],
        "rows": rows,
        "baseline_error": baseline_error,
        "failure_rows": failure_rows,
    }


def test_e11_sensitivity(benchmark):
    result = run_experiment(
        benchmark, _experiment, title="E11: sensitivity to β, query threshold and seeding intensity"
    )
    assert result["baseline_error"] <= 0.05, "prescribed parameters must work on the easy instance"
    # The prescribed setting of each knob is never much worse than the best
    # setting of that knob (i.e. the paper's choices sit on the plateau).
    by_knob: dict[str, list[tuple[str, float]]] = {}
    for knob, setting, error in result["rows"]:
        by_knob.setdefault(knob, []).append((setting, error))
    for knob, settings in by_knob.items():
        prescribed_errors = [e for s, e in settings if s == "1.0x"]
        if not prescribed_errors:
            continue  # the failure sweep has no "prescribed" setting
        best = min(e for _, e in settings)
        assert prescribed_errors[0] <= best + 0.10, f"prescribed {knob} is far off the plateau"
    # The two failure-sweep arms (array masks vs per-message coins) must
    # agree loosely at every drop rate — they are independent
    # implementations of the same failure semantics.
    for point in result["failure_rows"]:
        gap = abs(point["vectorized"] - point["message_passing"])
        assert gap <= CROSS_CHECK_TOLERANCE, (
            f"failure-sweep arms disagree by {gap:.3f} at "
            f"drop_prob={point['drop_prob']}"
        )
