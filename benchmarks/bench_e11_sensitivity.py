"""E11 — robustness / sensitivity to the algorithm's knobs.

The paper highlights that the algorithm does not need to know k — a lower
bound β on the balance suffices — and fixes the seeding intensity and the
query threshold by the analysis.  This benchmark sweeps each knob around the
prescribed value on a fixed instance:

* β mis-specification (too small / exact / too large),
* the query threshold (×1/4, ×1, ×4 of the prescribed 1/(√(2β)·n)),
* the seeding intensity s̄ (fewer / prescribed / more trials),

and reports the resulting error, confirming a broad plateau around the
prescribed values (and identifying which side fails first).
"""

from __future__ import annotations

import numpy as np

from repro.core import AlgorithmParameters, CentralizedClustering
from repro.graphs import cycle_of_cliques

from _utils import run_experiment

TRIALS = 3


def _run(graph, truth, params, seed0) -> float:
    errors = []
    for trial in range(TRIALS):
        result = CentralizedClustering(graph, params, seed=seed0 + trial).run(keep_loads=False)
        errors.append(result.error_against(truth))
    return float(np.mean(errors))


def _experiment() -> dict:
    instance = cycle_of_cliques(4, 20, seed=3)
    graph, truth = instance.graph, instance.partition
    base = AlgorithmParameters.from_instance(graph, truth)
    rows = []

    # Sweep 1: beta mis-specification (threshold and s̄ both follow beta).
    for factor in (0.25, 0.5, 1.0, 2.0):
        beta = min(1.0, base.beta * factor)
        params = AlgorithmParameters.from_graph(graph, truth.k, beta=beta)
        rows.append(["beta", f"{factor}x", round(_run(graph, truth, params, 10), 3)])

    # Sweep 2: query threshold only.
    for factor in (0.25, 1.0, 4.0):
        params = base.with_threshold(base.threshold * factor)
        rows.append(["threshold", f"{factor}x", round(_run(graph, truth, params, 20), 3)])

    # Sweep 3: seeding trials only.
    for factor in (0.25, 1.0, 3.0):
        trials = max(1, int(round(base.num_seeding_trials * factor)))
        params = base.with_seeding_trials(trials)
        rows.append(["seeding trials", f"{factor}x", round(_run(graph, truth, params, 30), 3)])

    baseline_error = [r[2] for r in rows if r[0] == "threshold" and r[1] == "1.0x"][0]
    return {
        "columns": ["knob", "setting (× prescribed)", "mean error"],
        "rows": rows,
        "baseline_error": baseline_error,
    }


def test_e11_sensitivity(benchmark):
    result = run_experiment(
        benchmark, _experiment, title="E11: sensitivity to β, query threshold and seeding intensity"
    )
    assert result["baseline_error"] <= 0.05, "prescribed parameters must work on the easy instance"
    # The prescribed setting of each knob is never much worse than the best
    # setting of that knob (i.e. the paper's choices sit on the plateau).
    by_knob: dict[str, list[tuple[str, float]]] = {}
    for knob, setting, error in result["rows"]:
        by_knob.setdefault(knob, []).append((setting, error))
    for knob, settings in by_knob.items():
        prescribed = [e for s, e in settings if s == "1.0x"][0]
        best = min(e for _, e in settings)
        assert prescribed <= best + 0.10, f"prescribed {knob} is far off the plateau"
